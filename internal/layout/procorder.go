package layout

import (
	"sort"

	"branchalign/internal/interp"
	"branchalign/internal/ir"
)

// OrderFunctions computes a Pettis-Hansen-style procedure ordering from
// the profiled call graph: procedures that call each other frequently
// are placed near each other in memory, reducing instruction-cache
// conflicts between hot caller/callee pairs. This is the interprocedural
// generalization the paper lists as future work ("we would like to try
// to generalize our method to the interprocedural code placement
// problem"); the algorithm here is the chain-merging procedure ordering
// of Pettis & Hansen (PLDI 1990), which their paper pairs with the basic
// block ordering this repository's aligners implement.
//
// The returned slice is a permutation of function indices; the chain
// containing the module's entry function is placed first.
func OrderFunctions(mod *ir.Module, prof *interp.Profile) []int {
	n := len(mod.Funcs)
	if n == 1 {
		return []int{0}
	}
	// Undirected call-graph weights.
	type cgEdge struct {
		a, b   int
		weight int64
	}
	var edges []cgEdge
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			w := int64(0)
			if prof != nil && prof.CallCounts != nil {
				w = prof.CallCounts[a][b] + prof.CallCounts[b][a]
			}
			if w > 0 {
				edges = append(edges, cgEdge{a, b, w})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].weight != edges[j].weight {
			return edges[i].weight > edges[j].weight
		}
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})

	// Each function starts as its own chain; merging the chains of (a, b)
	// picks the concatenation (of the four orientations) that minimizes
	// the distance between a and b — the "closest is best" rule.
	chainOf := make([]int, n)
	chains := make([][]int, n)
	for i := 0; i < n; i++ {
		chainOf[i] = i
		chains[i] = []int{i}
	}
	reverse := func(s []int) {
		for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
			s[i], s[j] = s[j], s[i]
		}
	}
	pos := func(chain []int, x int) int {
		for i, v := range chain {
			if v == x {
				return i
			}
		}
		return -1
	}
	for _, e := range edges {
		ca, cb := chainOf[e.a], chainOf[e.b]
		if ca == cb {
			continue
		}
		A := chains[ca]
		B := chains[cb]
		// Try the four orientations; distance between a and b in the
		// concatenation A' + B' is (len(A')-1-pos(a)) + pos(b) + 1.
		best := -1
		bestDist := 1 << 30
		for o := 0; o < 4; o++ {
			ra, rb := o&1 == 1, o&2 == 2
			pa := pos(A, e.a)
			if ra {
				pa = len(A) - 1 - pa
			}
			pb := pos(B, e.b)
			if rb {
				pb = len(B) - 1 - pb
			}
			dist := (len(A) - 1 - pa) + pb + 1
			if dist < bestDist {
				bestDist = dist
				best = o
			}
		}
		merged := make([]int, 0, len(A)+len(B))
		ac := append([]int(nil), A...)
		bc := append([]int(nil), B...)
		if best&1 == 1 {
			reverse(ac)
		}
		if best&2 == 2 {
			reverse(bc)
		}
		merged = append(merged, ac...)
		merged = append(merged, bc...)
		chains[ca] = merged
		chains[cb] = nil
		for _, x := range merged {
			chainOf[x] = ca
		}
	}

	// Emit: the entry function's chain first, remaining chains by their
	// hottest member's total call traffic, then index order.
	heat := make([]int64, n)
	if prof != nil && prof.CallCounts != nil {
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				heat[a] += prof.CallCounts[a][b] + prof.CallCounts[b][a]
			}
		}
	}
	type rankedChain struct {
		blocks []int
		heat   int64
		minIdx int
	}
	var ranked []rankedChain
	entryChain := chainOf[mod.EntryFunc]
	for ci, c := range chains {
		if len(c) == 0 || ci == entryChain {
			continue
		}
		rc := rankedChain{blocks: c, minIdx: c[0]}
		for _, x := range c {
			rc.heat += heat[x]
			if x < rc.minIdx {
				rc.minIdx = x
			}
		}
		ranked = append(ranked, rc)
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].heat != ranked[j].heat {
			return ranked[i].heat > ranked[j].heat
		}
		return ranked[i].minIdx < ranked[j].minIdx
	})
	out := make([]int, 0, n)
	out = append(out, chains[entryChain]...)
	for _, rc := range ranked {
		out = append(out, rc.blocks...)
	}
	return out
}

// PlaceModuleOrdered lays out the module's functions in the given order
// (a permutation of function indices) instead of module order, packing
// them contiguously from address 0.
func PlaceModuleOrdered(mod *ir.Module, l *Layout, funcOrder []int) *PlacedModule {
	pm := &PlacedModule{Mod: mod, Funcs: make([]*PlacedFunc, len(mod.Funcs))}
	cur := int64(0)
	for _, fi := range funcOrder {
		if rem := cur % FuncAlignment; rem != 0 {
			cur += FuncAlignment - rem
		}
		pf := PlaceFunc(mod.Funcs[fi], l.Funcs[fi], cur)
		pm.Funcs[fi] = pf
		cur = pf.End
	}
	return pm
}
