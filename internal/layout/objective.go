package layout

// This file is the objective layer: the closed-form successor-cost row
// both cost surfaces (SuccessorCost, SuccessorCostRow) are derived
// from, and the ExtTSP objective — the extended-TSP score of Newell &
// Pupyrev (arXiv:1809.04676) that values short forward and backward
// jumps, not only fall-throughs. The control-penalty objective is a
// minimization over exact machine cycles; ExtTSP is a maximization over
// a smooth locality proxy. Both are pure functions of (ir.Func,
// interp.FuncProfile, block order), which is what lets the aligner
// family share one pipeline.

import (
	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/machine"
)

// succArc is one exception to a successor-cost row's default: placing
// block To directly after the row's block costs Cost instead.
type succArc struct {
	To   int
	Cost Cost
}

// succRow computes one row of the paper's d(B, X) cost table in closed
// form: the row-constant default — the cost when the layout successor
// is any block the terminator does not target, which is also the
// end-of-layout cost d(B, -1) — plus at most two exception arcs (a
// conditional branch has two successors; every other terminator has at
// most one that matters). Duplicate successors keep first-match-wins
// semantics: when a conditional branch targets the same block both
// ways, only the fall-through-predicted arc is emitted, exactly as
// SuccessorCost's case order resolves it.
//
// Every cost surface derives from this row: SuccessorCost(b, x) is the
// first arc matching x (default when none matches), SuccessorCostRow
// appends the arcs to its caller's slices, and BuildSparseMatrix stores
// them as CSR exceptions.
func succRow(f *ir.Func, fp *interp.FuncProfile, pred []int, b int, m machine.Model) (def Cost, arcs [2]succArc, n int) {
	blk := f.Blocks[b]
	counts := fp.EdgeCounts[b]
	switch blk.Term.Kind {
	case ir.TermRet:
		return 0, arcs, 0
	case ir.TermBr:
		arcs[0] = succArc{To: blk.Term.Succs[0], Cost: 0}
		return counts[0] * m.JumpCost, arcs, 1
	case ir.TermCondBr:
		p := pred[b]
		nP, nO := counts[p], counts[1-p]
		def, _ = condDisplacedCost(nP, nO, m)
		sp, so := blk.Term.Succs[p], blk.Term.Succs[1-p]
		arcs[0] = succArc{To: sp, Cost: nP*m.CondFallthroughCorrect + nO*m.CondMispredict}
		n = 1
		if so != sp {
			arcs[1] = succArc{To: so, Cost: nP*m.CondTakenCorrect + nO*m.CondMispredict}
			n = 2
		}
		return def, arcs, n
	case ir.TermSwitch:
		p := pred[b]
		for si, cnt := range counts {
			if si == p {
				def += cnt * m.MultiCorrectTaken
			} else {
				def += cnt * m.MultiMispredict
			}
		}
		nP := counts[p]
		arcs[0] = succArc{
			To:   blk.Term.Succs[p],
			Cost: def - nP*m.MultiCorrectTaken + nP*m.MultiCorrectFallthrough,
		}
		return def, arcs, 1
	}
	return 0, arcs, 0
}

// ExtTSPParams parameterizes the ExtTSP objective. All windows are in
// bytes; the zero value is invalid — use DefaultExtTSPParams.
type ExtTSPParams struct {
	// FallthroughWeight scores an arc whose target is laid out exactly
	// at the end of its source (distance zero).
	FallthroughWeight float64
	// ForwardWeight and ForwardWindow score an arc jumping forward by
	// 0 < d < ForwardWindow bytes as ForwardWeight·(1 − d/ForwardWindow).
	ForwardWeight float64
	ForwardWindow int
	// BackwardWeight and BackwardWindow score an arc jumping backward by
	// 0 < d < BackwardWindow bytes analogously.
	BackwardWeight float64
	BackwardWindow int
}

// DefaultExtTSPParams returns the constants of arXiv:1809.04676 §3 (the
// values BOLT ships): fall-throughs at weight 1, short jumps at 0.1
// with linear decay over a 1024-byte forward and 640-byte backward
// window.
func DefaultExtTSPParams() ExtTSPParams {
	return ExtTSPParams{
		FallthroughWeight: 1.0,
		ForwardWeight:     0.1,
		ForwardWindow:     1024,
		BackwardWeight:    0.1,
		BackwardWindow:    640,
	}
}

// BlockBytes returns each block's byte size as the ExtTSP objective
// models it: the instruction count plus the terminator slot, times
// BytesPerSlot. This is deliberately layout-independent — the objective
// scores candidate orders, so it cannot know which unconditional
// branches will be elided or which fixup jumps inserted; it charges
// every block its worst-case emitted size instead (the same
// simplification BOLT makes).
func BlockBytes(f *ir.Func) []int {
	sizes := make([]int, len(f.Blocks))
	for b, blk := range f.Blocks {
		n := blk.Size()
		if blk.Term.Kind == ir.TermBr {
			n++ // a displaced TermBr materializes as a jump instruction
		}
		sizes[b] = n * BytesPerSlot
	}
	return sizes
}

// ArcScore is the ExtTSP kernel for one CFG arc executed w times whose
// source ends at byte srcEnd and whose target starts at byte dst. It is
// exported for the chain-merging aligner, whose gain computations score
// individual arcs under candidate chain offsets.
func ArcScore(w int64, srcEnd, dst int, p ExtTSPParams) float64 {
	switch {
	case dst == srcEnd:
		return float64(w) * p.FallthroughWeight
	case dst > srcEnd:
		d := dst - srcEnd
		if d >= p.ForwardWindow {
			return 0
		}
		return float64(w) * p.ForwardWeight * (1 - float64(d)/float64(p.ForwardWindow))
	default:
		d := srcEnd - dst
		if d >= p.BackwardWindow {
			return 0
		}
		return float64(w) * p.BackwardWeight * (1 - float64(d)/float64(p.BackwardWindow))
	}
}

// ExtTSPScore evaluates the ExtTSP objective of a block order: the sum
// over CFG arcs of weight·kernel(distance), where the kernel pays
// FallthroughWeight for zero-distance arcs and decays the short-jump
// weights linearly over their windows (ArcScore). Higher is better —
// unlike control penalty, this is a maximization objective. order must
// be a permutation of f's blocks; arcs are summed in block/successor
// index order, so the result is bit-deterministic.
func ExtTSPScore(f *ir.Func, fp *interp.FuncProfile, order []int, p ExtTSPParams) float64 {
	sizes := BlockBytes(f)
	pos := make([]int, len(f.Blocks))
	off := 0
	for _, b := range order {
		pos[b] = off
		off += sizes[b]
	}
	var total float64
	for b, blk := range f.Blocks {
		srcEnd := pos[b] + sizes[b]
		for si := range blk.Term.Succs {
			w := fp.EdgeCounts[b][si]
			if w == 0 {
				continue
			}
			total += ArcScore(w, srcEnd, pos[blk.Term.Succs[si]], p)
		}
	}
	return total
}

// ModuleExtTSPScore sums ExtTSPScore over all functions of a layout.
func ModuleExtTSPScore(mod *ir.Module, l *Layout, prof *interp.Profile, p ExtTSPParams) float64 {
	var total float64
	for fi, f := range mod.Funcs {
		total += ExtTSPScore(f, prof.Funcs[fi], l.Funcs[fi].Order, p)
	}
	return total
}
