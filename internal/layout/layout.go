// Package layout represents intraprocedural code layouts — permutations
// of each function's basic blocks — and implements the paper's cost
// semantics for them: static branch predictions, fixup-jump insertion
// (with conditional-branch inversion), exact control-penalty evaluation
// of a layout against a profile, and instruction-address assignment for
// the pipeline/cache simulator.
package layout

import (
	"fmt"

	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/machine"
)

// Cost is a penalty in cycles (alias of machine.Cost and tsp.Cost).
type Cost = machine.Cost

// FuncLayout is a layout of one function plus the layout-time decisions
// that fix its semantics: the static prediction of every branch and the
// fixup arrangement of fully displaced conditional branches. Predictions
// and arrangements are decided from the *training* profile and then kept
// fixed, which is what makes cross-validation (testing with a different
// profile) meaningful.
type FuncLayout struct {
	// Order is the permutation of block IDs; Order[0] must be the entry
	// block (the function must begin at its entry point).
	Order []int
	// Pred[b] is the statically predicted successor index of block b
	// (indexing Term.Succs), or -1 for blocks without successors.
	Pred []int
	// FixupTaken[b] applies to conditional blocks whose successors are
	// both displaced: true keeps the predicted successor as the branch's
	// taken target (fall-through reaches the other successor via a fixup
	// jump); false inverts the branch so the predicted successor is
	// reached via fall-through plus fixup jump.
	FixupTaken []bool
}

// Layout is a whole-module layout, indexed like Module.Funcs.
type Layout struct {
	Funcs []*FuncLayout
}

// Validate checks that fl is a well-formed layout of f.
func (fl *FuncLayout) Validate(f *ir.Func) error {
	n := len(f.Blocks)
	if len(fl.Order) != n {
		return fmt.Errorf("layout: order has %d entries for %d blocks", len(fl.Order), n)
	}
	seen := make([]bool, n)
	for _, b := range fl.Order {
		if b < 0 || b >= n || seen[b] {
			return fmt.Errorf("layout: order is not a permutation (block %d)", b)
		}
		seen[b] = true
	}
	if fl.Order[0] != 0 {
		return fmt.Errorf("layout: entry block must be first, got b%d", fl.Order[0])
	}
	if len(fl.Pred) != n || len(fl.FixupTaken) != n {
		return fmt.Errorf("layout: prediction tables have wrong length")
	}
	for b, blk := range f.Blocks {
		switch blk.Term.Kind {
		case ir.TermRet:
			if fl.Pred[b] != -1 {
				return fmt.Errorf("layout: block b%d returns but has prediction %d", b, fl.Pred[b])
			}
		default:
			if fl.Pred[b] < 0 || fl.Pred[b] >= len(blk.Term.Succs) {
				return fmt.Errorf("layout: block b%d prediction %d out of range", b, fl.Pred[b])
			}
		}
	}
	return nil
}

// Validate checks a module layout.
func (l *Layout) Validate(mod *ir.Module) error {
	if len(l.Funcs) != len(mod.Funcs) {
		return fmt.Errorf("layout: %d function layouts for %d functions", len(l.Funcs), len(mod.Funcs))
	}
	for fi, fl := range l.Funcs {
		if err := fl.Validate(mod.Funcs[fi]); err != nil {
			return fmt.Errorf("func %s: %w", mod.Funcs[fi].Name, err)
		}
	}
	return nil
}

// Predictions derives the static branch predictions for f from a profile:
// each branch predicts its most frequently executed successor (ties and
// never-executed branches default to successor 0). This mirrors the
// paper's assumption that "the processor always predicts the most common
// CFG successor of a basic block".
func Predictions(f *ir.Func, fp *interp.FuncProfile) []int {
	pred := make([]int, len(f.Blocks))
	for b, blk := range f.Blocks {
		if blk.Term.Kind == ir.TermRet {
			pred[b] = -1
			continue
		}
		best, bestCount := 0, int64(-1)
		for si := range blk.Term.Succs {
			if c := fp.EdgeCounts[b][si]; c > bestCount {
				best, bestCount = si, c
			}
		}
		pred[b] = best
	}
	return pred
}

// Finalize builds the FuncLayout for a given block order: predictions
// come from the training profile, and for every fully displaced
// conditional branch the cheaper fixup arrangement (under the training
// counts) is chosen. The result satisfies Validate and realizes exactly
// the DTSP walk cost of the order.
func Finalize(f *ir.Func, fp *interp.FuncProfile, order []int, m machine.Model) *FuncLayout {
	fl := &FuncLayout{
		Order:      append([]int(nil), order...),
		Pred:       Predictions(f, fp),
		FixupTaken: make([]bool, len(f.Blocks)),
	}
	succ := fl.LayoutSuccessors(f)
	for b, blk := range f.Blocks {
		if blk.Term.Kind != ir.TermCondBr {
			continue
		}
		x := succ[b]
		if x == blk.Term.Succs[0] || x == blk.Term.Succs[1] {
			continue // not displaced; arrangement irrelevant
		}
		p := fl.Pred[b]
		nP := fp.EdgeCounts[b][p]
		nO := fp.EdgeCounts[b][1-p]
		_, keepTaken := condDisplacedCost(nP, nO, m)
		fl.FixupTaken[b] = keepTaken
	}
	return fl
}

// LayoutSuccessors returns, for each block ID, the block that succeeds it
// in the layout (-1 for the last block).
func (fl *FuncLayout) LayoutSuccessors(f *ir.Func) []int {
	succ := make([]int, len(f.Blocks))
	for i := range succ {
		succ[i] = -1
	}
	for k := 0; k+1 < len(fl.Order); k++ {
		succ[fl.Order[k]] = fl.Order[k+1]
	}
	return succ
}

// Identity returns the original (compiler) layout of mod with predictions
// finalized from prof.
func Identity(mod *ir.Module, prof *interp.Profile, m machine.Model) *Layout {
	l := &Layout{}
	for fi, f := range mod.Funcs {
		order := make([]int, len(f.Blocks))
		for i := range order {
			order[i] = i
		}
		l.Funcs = append(l.Funcs, Finalize(f, prof.Funcs[fi], order, m))
	}
	return l
}
