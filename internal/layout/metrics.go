package layout

import (
	"branchalign/internal/interp"
	"branchalign/internal/ir"
)

// Metrics summarizes how a layout treats a function's dynamic control
// transfers: the fall-through rate is the quantity alignment maximizes
// indirectly (every fall-through is a transfer that costs nothing and
// fetches no new line).
type Metrics struct {
	// Transfers counts dynamic executions of non-return terminators.
	Transfers int64
	// Fallthroughs counts transfers that continue sequentially (no taken
	// branch, no fixup).
	Fallthroughs int64
	// Taken counts transfers that redirect fetch.
	Taken int64
	// ViaFixup counts transfers routed through inserted fixup jumps.
	ViaFixup int64
}

// Add accumulates other into m.
func (m *Metrics) Add(other Metrics) {
	m.Transfers += other.Transfers
	m.Fallthroughs += other.Fallthroughs
	m.Taken += other.Taken
	m.ViaFixup += other.ViaFixup
}

// FallthroughRate returns the fraction of transfers that fall through.
func (m Metrics) FallthroughRate() float64 {
	if m.Transfers == 0 {
		return 0
	}
	return float64(m.Fallthroughs) / float64(m.Transfers)
}

// ComputeMetrics evaluates fl against the edge counts in fp.
func ComputeMetrics(f *ir.Func, fl *FuncLayout, fp *interp.FuncProfile) Metrics {
	succ := fl.LayoutSuccessors(f)
	var m Metrics
	for b, blk := range f.Blocks {
		if blk.Term.Kind == ir.TermRet {
			continue
		}
		for si := range blk.Term.Succs {
			n := fp.EdgeCounts[b][si]
			if n == 0 {
				continue
			}
			taken, viaFixup := fl.TakenPath(f, b, si, succ[b])
			m.Transfers += n
			switch {
			case viaFixup:
				m.ViaFixup += n
				m.Taken += n // the fixup jump redirects
			case taken:
				m.Taken += n
			default:
				m.Fallthroughs += n
			}
		}
	}
	return m
}

// ModuleMetrics sums ComputeMetrics over all functions.
func ModuleMetrics(mod *ir.Module, l *Layout, prof *interp.Profile) Metrics {
	var m Metrics
	for fi, f := range mod.Funcs {
		m.Add(ComputeMetrics(f, l.Funcs[fi], prof.Funcs[fi]))
	}
	return m
}
