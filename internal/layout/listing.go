package layout

import (
	"fmt"
	"strings"

	"branchalign/internal/ir"
)

// Listing renders the laid-out function as pseudo-assembly: blocks appear
// in layout order at their assigned addresses, fall-through branches are
// elided, displaced unconditional branches are materialized as jumps,
// conditional branches are shown with the direction the layout actually
// emits (inverted when the original fall-through was displaced), and
// fixup jumps appear as the separate one-instruction blocks they are.
// This is exactly the transformation the paper describes: "implemented
// with the appropriate inversions of conditional branches and insertions
// or deletions of unconditional jumps to ensure that program semantics
// are maintained."
func Listing(f *ir.Func, fl *FuncLayout, pf *PlacedFunc) string {
	var sb strings.Builder
	succ := fl.LayoutSuccessors(f)
	fmt.Fprintf(&sb, "%s:\n", f.Name)
	for _, b := range fl.Order {
		blk := f.Blocks[b]
		addr := pf.Addr[b]
		name := blk.Name
		if name != "" {
			name = " ; " + name
		}
		fmt.Fprintf(&sb, "%6d: .b%d%s\n", addr, b, name)
		for i, in := range blk.Instrs {
			fmt.Fprintf(&sb, "%6d:   %s\n", addr+int64(i), in)
		}
		termAddr := addr + int64(len(blk.Instrs))
		switch blk.Term.Kind {
		case ir.TermRet:
			fmt.Fprintf(&sb, "%6d:   ret %s\n", termAddr, blk.Term.Val)
		case ir.TermBr:
			t := blk.Term.Succs[0]
			if t == succ[b] {
				fmt.Fprintf(&sb, "        ; falls through to .b%d\n", t)
			} else {
				fmt.Fprintf(&sb, "%6d:   jmp .b%d (@%d)\n", termAddr, t, pf.Addr[t])
			}
		case ir.TermCondBr:
			p := fl.Pred[b]
			taken, fallthrough_ := condTargets(blk, fl, succ[b])
			hint := "predict-taken"
			if !fl.PredictedTaken(f, b, succ[b]) {
				hint = "predict-not-taken"
			}
			cond := blk.Term.Cond.String()
			if taken != blk.Term.Succs[0] {
				cond = "!" + cond // the emitted branch tests the inverted condition
			}
			fmt.Fprintf(&sb, "%6d:   br.if %s -> .b%d (@%d) [%s]\n",
				termAddr, cond, taken, pf.Addr[taken], hint)
			if pf.FixupAddr[b] >= 0 {
				fmt.Fprintf(&sb, "%6d:   jmp .b%d (@%d) ; fixup block\n",
					pf.FixupAddr[b], fallthrough_, pf.Addr[fallthrough_])
			} else {
				fmt.Fprintf(&sb, "        ; falls through to .b%d\n", fallthrough_)
			}
			_ = p
		case ir.TermSwitch:
			fmt.Fprintf(&sb, "%6d:   jmp.table %s [", termAddr, blk.Term.Cond)
			for ci := range blk.Term.Cases {
				fmt.Fprintf(&sb, "%d=>.b%d ", blk.Term.Cases[ci], blk.Term.Succs[ci])
			}
			fmt.Fprintf(&sb, "default=>.b%d]\n", blk.Term.Succs[len(blk.Term.Succs)-1])
		}
	}
	return sb.String()
}

// condTargets determines which successor the emitted conditional branch
// jumps to (taken) and which is reached sequentially (fall-through,
// possibly via the fixup block), under the layout.
func condTargets(blk *ir.Block, fl *FuncLayout, layoutSucc int) (taken, fallThrough int) {
	s0, s1 := blk.Term.Succs[0], blk.Term.Succs[1]
	switch layoutSucc {
	case s0:
		return s1, s0
	case s1:
		return s0, s1
	default:
		p := fl.Pred[blk.ID]
		if fl.FixupTaken[blk.ID] {
			// Taken target is the predicted successor.
			return blk.Term.Succs[p], blk.Term.Succs[1-p]
		}
		return blk.Term.Succs[1-p], blk.Term.Succs[p]
	}
}
