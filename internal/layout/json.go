package layout

import (
	"encoding/json"
	"fmt"
	"io"

	"branchalign/internal/ir"
)

// WriteJSON serializes the layout (block orders plus the layout-time
// prediction and fixup decisions), the artifact a backend would consume
// to emit the final binary.
func (l *Layout) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(l)
}

// ReadLayoutJSON deserializes a layout and validates it against mod.
func ReadLayoutJSON(r io.Reader, mod *ir.Module) (*Layout, error) {
	var l Layout
	if err := json.NewDecoder(r).Decode(&l); err != nil {
		return nil, fmt.Errorf("layout: decoding layout: %w", err)
	}
	if err := l.Validate(mod); err != nil {
		return nil, err
	}
	return &l, nil
}
