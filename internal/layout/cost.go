package layout

import (
	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/machine"
)

// condDisplacedCost returns the aggregate penalty of a conditional branch
// whose successors are both displaced, together with the cheaper fixup
// arrangement. nP and nO are the execution counts of the predicted and
// non-predicted successors.
//
// Arrangement "keep taken" (true): the branch's taken target remains the
// predicted successor (correctly predicted taken branches pay the
// misfetch); the other successor is reached through the fall-through
// fixup jump after a mispredict.
//
// Arrangement "invert" (false): the branch is inverted so the predicted
// successor is reached by falling through into the fixup jump (paying the
// jump); the other successor is a mispredicted taken branch.
func condDisplacedCost(nP, nO int64, m machine.Model) (Cost, bool) {
	keep := nP*m.CondTakenCorrect + nO*(m.CondMispredict+m.JumpCost)
	invert := nP*m.JumpCost + nO*m.CondMispredict
	if keep <= invert {
		return keep, true
	}
	return invert, false
}

// SuccessorCost is the paper's d(B, X): the total penalty cycles accrued
// at the end of block b when block x is its layout successor (x == -1
// means b is last), under predictions pred and the counts in fp. For
// fully displaced conditional branches the cheaper fixup arrangement is
// assumed, matching what Finalize will choose — this is the quantity the
// DTSP edge costs encode. It is the point form of succRow: the first
// exception arc matching x, or the row default when none does (the
// first-match rule is what resolves duplicate successors).
func SuccessorCost(f *ir.Func, fp *interp.FuncProfile, pred []int, b, x int, m machine.Model) Cost {
	def, arcs, n := succRow(f, fp, pred, b, m)
	for i := 0; i < n; i++ {
		if arcs[i].To == x {
			return arcs[i].Cost
		}
	}
	return def
}

// SuccessorCostRow is the sparse form of one row of the paper's d(B, X)
// cost table: it returns the row-constant default — the cost when the
// layout successor is any block the terminator does not target, which is
// also the end-of-layout cost d(B, -1) — and appends to succs/costs the
// (successor block, cost) pairs that can differ from that default. The
// row has at most outdegree(b) such entries: an unconditional branch is
// free only into its target, a conditional branch is cheaper into either
// of its two successors, and a multiway branch saves only on its
// predicted successor (every other arm pays the mispredict penalty
// regardless of placement). Duplicate successors resolve the way
// SuccessorCost's case order does (first match wins), so for every x,
// SuccessorCost(f, fp, pred, b, x, m) equals the appended cost when x is
// listed and the default otherwise.
func SuccessorCostRow(f *ir.Func, fp *interp.FuncProfile, pred []int, b int, m machine.Model, succs []int, costs []Cost) (Cost, []int, []Cost) {
	def, arcs, n := succRow(f, fp, pred, b, m)
	for i := 0; i < n; i++ {
		succs = append(succs, arcs[i].To)
		costs = append(costs, arcs[i].Cost)
	}
	return def, succs, costs
}

// Event is the consequence of one dynamic execution of a block's
// terminator under a layout.
type Event struct {
	// Penalty is the control-penalty cycles of this execution.
	Penalty Cost
	// ViaFixup reports that execution flows through an inserted fixup
	// jump (a separate one-instruction block the cache simulator must
	// fetch).
	ViaFixup bool
	// InsertedJump reports that the block's own unconditional terminator
	// had to be materialized as a jump instruction (affects block size,
	// accounted by PlaceFunc, and means the transfer was a taken branch).
	InsertedJump bool
}

// Exec evaluates a single execution of block b leaving through successor
// index si (-1 for return) under this layout. layoutSucc must be
// fl.LayoutSuccessors(f)[b].
func (fl *FuncLayout) Exec(f *ir.Func, b, si, layoutSucc int, m machine.Model) Event {
	blk := f.Blocks[b]
	switch blk.Term.Kind {
	case ir.TermRet:
		return Event{Penalty: m.RetCost}
	case ir.TermBr:
		if blk.Term.Succs[0] == layoutSucc {
			return Event{}
		}
		return Event{Penalty: m.JumpCost, InsertedJump: true}
	case ir.TermCondBr:
		p := fl.Pred[b]
		predictedTaken := si == p
		switch layoutSucc {
		case blk.Term.Succs[p]:
			if predictedTaken {
				return Event{Penalty: m.CondFallthroughCorrect}
			}
			return Event{Penalty: m.CondMispredict}
		case blk.Term.Succs[1-p]:
			if predictedTaken {
				return Event{Penalty: m.CondTakenCorrect}
			}
			return Event{Penalty: m.CondMispredict}
		default:
			if fl.FixupTaken[b] {
				// Taken target: predicted successor. Other successor goes
				// through the fall-through fixup jump.
				if predictedTaken {
					return Event{Penalty: m.CondTakenCorrect}
				}
				return Event{Penalty: m.CondMispredict + m.JumpCost, ViaFixup: true}
			}
			// Inverted: predicted successor falls through to the fixup.
			if predictedTaken {
				return Event{Penalty: m.JumpCost, ViaFixup: true}
			}
			return Event{Penalty: m.CondMispredict}
		}
	case ir.TermSwitch:
		p := fl.Pred[b]
		if si == p {
			if blk.Term.Succs[p] == layoutSucc {
				return Event{Penalty: m.MultiCorrectFallthrough}
			}
			return Event{Penalty: m.MultiCorrectTaken}
		}
		return Event{Penalty: m.MultiMispredict}
	}
	return Event{}
}

// TakenPath reports how one dynamic execution of block b's terminator
// reaches successor index si under this layout: whether the transfer
// takes the branch (as opposed to falling through) and whether it flows
// through an inserted fixup jump. For unconditional terminators, taken
// means a materialized jump. Multiway branches always redirect through
// the register target (taken == true) regardless of layout; returns are
// (false, false).
//
// Together with PredictedTaken this factors Exec into "what the machine
// does" and "what the predictor thought", which is what the dynamic
// branch-prediction simulation in package pipe needs (the trace-driven
// predictor study of the paper's footnote 6).
func (fl *FuncLayout) TakenPath(f *ir.Func, b, si, layoutSucc int) (taken, viaFixup bool) {
	blk := f.Blocks[b]
	switch blk.Term.Kind {
	case ir.TermRet:
		return false, false
	case ir.TermBr:
		return blk.Term.Succs[0] != layoutSucc, false
	case ir.TermCondBr:
		p := fl.Pred[b]
		switch layoutSucc {
		case blk.Term.Succs[p]:
			// Fall-through is the predicted successor.
			return si != p, false
		case blk.Term.Succs[1-p]:
			// Fall-through is the other successor.
			return si == p, false
		default:
			if fl.FixupTaken[b] {
				// Taken target: predicted successor; fixup on fall-through.
				if si == p {
					return true, false
				}
				return false, true
			}
			// Inverted: predicted successor through the fixup.
			if si == p {
				return false, true
			}
			return true, false
		}
	case ir.TermSwitch:
		return true, false
	}
	return false, false
}

// PredictedTaken reports the static prediction direction of conditional
// block b under this layout: true when the predicted successor is the
// branch's taken target.
func (fl *FuncLayout) PredictedTaken(f *ir.Func, b, layoutSucc int) bool {
	taken, _ := fl.TakenPath(f, b, fl.Pred[b], layoutSucc)
	return taken
}

// Penalty evaluates the total intraprocedural control penalty of layout
// fl for function f against the edge counts in fp (which may come from a
// different input than the one the layout was trained on). Returns and
// calls are excluded: they are layout-independent.
func Penalty(f *ir.Func, fl *FuncLayout, fp *interp.FuncProfile, m machine.Model) Cost {
	succ := fl.LayoutSuccessors(f)
	var total Cost
	for b, blk := range f.Blocks {
		if blk.Term.Kind == ir.TermRet {
			continue
		}
		for si := range blk.Term.Succs {
			n := fp.EdgeCounts[b][si]
			if n == 0 {
				continue
			}
			ev := fl.Exec(f, b, si, succ[b], m)
			total += n * ev.Penalty
		}
	}
	return total
}

// ModulePenalty sums Penalty over all functions.
func ModulePenalty(mod *ir.Module, l *Layout, prof *interp.Profile, m machine.Model) Cost {
	var total Cost
	for fi, f := range mod.Funcs {
		total += Penalty(f, l.Funcs[fi], prof.Funcs[fi], m)
	}
	return total
}
