package layout

import (
	"branchalign/internal/ir"
)

// BytesPerSlot is the encoded size of one instruction slot (Alpha
// instructions are 4 bytes).
const BytesPerSlot = 4

// PlacedFunc assigns instruction addresses (in slots) to a laid-out
// function. Block sizes depend on the layout: an unconditional terminator
// whose target is the layout successor is elided entirely, a displaced
// one costs a jump slot, and a fully displaced conditional branch gets a
// one-slot fixup jump placed directly after the block (fixups "count as
// separate basic blocks").
type PlacedFunc struct {
	FL *FuncLayout
	// Addr[blockID] is the address (slot index) of the block's first
	// instruction.
	Addr []int64
	// Size[blockID] is the block's laid-out size in slots, excluding any
	// fixup block.
	Size []int64
	// FixupAddr[blockID] is the address of the block's fixup jump slot,
	// or -1 when the block has none.
	FixupAddr []int64
	// Base and End delimit the function: [Base, End).
	Base, End int64
}

// PlaceFunc lays f out at the given base address under fl.
func PlaceFunc(f *ir.Func, fl *FuncLayout, base int64) *PlacedFunc {
	pf := &PlacedFunc{
		FL:        fl,
		Addr:      make([]int64, len(f.Blocks)),
		Size:      make([]int64, len(f.Blocks)),
		FixupAddr: make([]int64, len(f.Blocks)),
		Base:      base,
	}
	succ := fl.LayoutSuccessors(f)
	cur := base
	for _, b := range fl.Order {
		blk := f.Blocks[b]
		size := int64(len(blk.Instrs))
		fixup := int64(0)
		switch blk.Term.Kind {
		case ir.TermRet, ir.TermCondBr, ir.TermSwitch:
			size++
			if blk.Term.Kind == ir.TermCondBr &&
				succ[b] != blk.Term.Succs[0] && succ[b] != blk.Term.Succs[1] {
				fixup = 1
			}
		case ir.TermBr:
			if blk.Term.Succs[0] != succ[b] {
				size++ // materialized jump
			}
		}
		pf.Addr[b] = cur
		pf.Size[b] = size
		if fixup > 0 {
			pf.FixupAddr[b] = cur + size
		} else {
			pf.FixupAddr[b] = -1
		}
		cur += size + fixup
	}
	pf.End = cur
	return pf
}

// CodeSize returns the function's laid-out size in slots.
func (pf *PlacedFunc) CodeSize() int64 { return pf.End - pf.Base }

// PlacedModule assigns addresses to every function of a module under a
// layout, packing functions contiguously in module order (alignment is
// intraprocedural: function order never changes).
type PlacedModule struct {
	Mod   *ir.Module
	Funcs []*PlacedFunc
}

// FuncAlignment pads each function start to this many slots, mimicking
// linker alignment of procedure entry points.
const FuncAlignment = 8

// PlaceModule lays out the whole module under l starting at address 0.
func PlaceModule(mod *ir.Module, l *Layout) *PlacedModule {
	pm := &PlacedModule{Mod: mod}
	cur := int64(0)
	for fi, f := range mod.Funcs {
		if rem := cur % FuncAlignment; rem != 0 {
			cur += FuncAlignment - rem
		}
		pf := PlaceFunc(f, l.Funcs[fi], cur)
		pm.Funcs = append(pm.Funcs, pf)
		cur = pf.End
	}
	return pm
}

// CodeSize returns the total laid-out size in slots (the highest function
// end address; functions may be placed in any order, see
// PlaceModuleOrdered).
func (pm *PlacedModule) CodeSize() int64 {
	var max int64
	for _, pf := range pm.Funcs {
		if pf != nil && pf.End > max {
			max = pf.End
		}
	}
	return max
}
