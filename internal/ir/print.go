package ir

import (
	"fmt"
	"strings"
)

// String renders the module as readable text, primarily for debugging and
// golden tests.
func (m *Module) String() string {
	var sb strings.Builder
	for gi, g := range m.GlobalNames {
		fmt.Fprintf(&sb, "global gs[%d] %s\n", gi, g)
	}
	for gi, g := range m.GlobalArrays {
		fmt.Fprintf(&sb, "global g[%d] %s[%d]\n", gi, g.Name, g.Size)
	}
	for fi, f := range m.Funcs {
		entry := ""
		if fi == m.EntryFunc {
			entry = " (entry)"
		}
		fmt.Fprintf(&sb, "func f%d %s%s\n", fi, f.Signature(), entry)
		sb.WriteString(f.Body())
	}
	return sb.String()
}

// Signature renders the function name and parameter shape.
func (f *Func) Signature() string {
	parts := make([]string, len(f.Params))
	for i, p := range f.Params {
		if p == ParamArray {
			parts[i] = "array"
		} else {
			parts[i] = "int"
		}
	}
	return fmt.Sprintf("%s(%s)", f.Name, strings.Join(parts, ", "))
}

// Body renders the function's blocks as indented text.
func (f *Func) Body() string {
	var sb strings.Builder
	for _, b := range f.Blocks {
		name := b.Name
		if name != "" {
			name = " ; " + name
		}
		fmt.Fprintf(&sb, "  b%d:%s\n", b.ID, name)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "    %s\n", in)
		}
		fmt.Fprintf(&sb, "    %s\n", b.Term)
	}
	return sb.String()
}

// Dot renders the function's CFG in Graphviz dot format; edge labels can
// optionally carry profile weights supplied per (block, successor index).
func (f *Func) Dot(weight func(block, succIdx int) (int64, bool)) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  node [shape=box];\n", f.Name)
	for _, b := range f.Blocks {
		label := fmt.Sprintf("b%d", b.ID)
		if b.Name != "" {
			label += "\\n" + b.Name
		}
		fmt.Fprintf(&sb, "  b%d [label=\"%s\"];\n", b.ID, label)
		for si, s := range b.Term.Succs {
			attr := ""
			if weight != nil {
				if w, ok := weight(b.ID, si); ok {
					attr = fmt.Sprintf(" [label=\"%d\"]", w)
				}
			}
			fmt.Fprintf(&sb, "  b%d -> b%d%s;\n", b.ID, s, attr)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
