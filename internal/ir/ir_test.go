package ir

import (
	"strings"
	"testing"
)

// buildDiamond constructs a minimal module with one function shaped like:
//
//	entry -> (then | else) -> join -> ret
func buildDiamond(t *testing.T) *Module {
	t.Helper()
	b := NewFuncBuilder("main", []ParamKind{ParamScalar})
	x := Reg(0)
	then := b.NewBlock("then")
	els := b.NewBlock("else")
	join := b.NewBlock("join")
	res := b.NewReg()
	b.CondBr(RegVal(x), then, els)
	b.SetInsert(then)
	b.EmitConst(res, 1)
	b.Br(join)
	b.SetInsert(els)
	b.EmitConst(res, 2)
	b.Br(join)
	b.SetInsert(join)
	b.EmitOut(RegVal(res))
	b.Ret(RegVal(res))
	m := &Module{Funcs: []*Func{b.Func()}}
	if err := m.Verify(); err != nil {
		t.Fatalf("diamond module does not verify: %v", err)
	}
	return m
}

func TestBuilderDiamond(t *testing.T) {
	m := buildDiamond(t)
	f := m.Funcs[0]
	if len(f.Blocks) != 4 {
		t.Fatalf("expected 4 blocks, got %d", len(f.Blocks))
	}
	if f.Entry().Term.Kind != TermCondBr {
		t.Fatalf("entry terminator = %v, want condbr", f.Entry().Term.Kind)
	}
	preds := f.Preds()
	if len(preds[3]) != 2 {
		t.Fatalf("join block should have 2 preds, got %v", preds[3])
	}
	if len(preds[0]) != 0 {
		t.Fatalf("entry should have no preds, got %v", preds[0])
	}
}

func TestValueString(t *testing.T) {
	if got := ConstVal(-7).String(); got != "-7" {
		t.Errorf("ConstVal string = %q", got)
	}
	if got := RegVal(3).String(); got != "r3" {
		t.Errorf("RegVal string = %q", got)
	}
}

func TestBlockSize(t *testing.T) {
	b := &Block{Instrs: make([]Instr, 5)}
	b.Term = Terminator{Kind: TermBr, Succs: []int{0}}
	if got := b.Size(); got != 5 {
		t.Errorf("Br block size = %d, want 5 (fall-through candidate)", got)
	}
	b.Term = Terminator{Kind: TermCondBr, Succs: []int{0, 1}}
	if got := b.Size(); got != 6 {
		t.Errorf("CondBr block size = %d, want 6", got)
	}
	b.Term = Terminator{Kind: TermRet}
	if got := b.Size(); got != 6 {
		t.Errorf("Ret block size = %d, want 6", got)
	}
}

func TestParamAccounting(t *testing.T) {
	f := &Func{Params: []ParamKind{ParamScalar, ParamArray, ParamScalar, ParamArray}}
	if f.NumArrayParams() != 2 || f.NumScalarParams() != 2 {
		t.Fatalf("param counts wrong: %d arrays, %d scalars", f.NumArrayParams(), f.NumScalarParams())
	}
}

func TestVerifyCatchesBadSuccessor(t *testing.T) {
	m := buildDiamond(t)
	m.Funcs[0].Blocks[1].Term.Succs[0] = 99
	if err := m.Verify(); err == nil {
		t.Fatal("expected verify error for out-of-range successor")
	}
}

func TestVerifyCatchesBadRegister(t *testing.T) {
	m := buildDiamond(t)
	m.Funcs[0].Blocks[1].Instrs[0].Dst = Reg(1000)
	if err := m.Verify(); err == nil {
		t.Fatal("expected verify error for out-of-range register")
	}
}

func TestVerifyCatchesDuplicateSwitchCases(t *testing.T) {
	b := NewFuncBuilder("f", nil)
	r := b.NewReg()
	b.EmitConst(r, 0)
	t1 := b.NewBlock("a")
	t2 := b.NewBlock("b")
	d := b.NewBlock("d")
	b.Switch(RegVal(r), []int64{1, 1}, []int{t1, t2}, d)
	for _, id := range []int{t1, t2, d} {
		b.SetInsert(id)
		b.Ret(ConstVal(0))
	}
	m := &Module{Funcs: []*Func{b.Func()}}
	if err := m.Verify(); err == nil || !strings.Contains(err.Error(), "duplicate switch case") {
		t.Fatalf("expected duplicate-case error, got %v", err)
	}
}

func TestVerifyCatchesCondBrSameTargets(t *testing.T) {
	b := NewFuncBuilder("f", nil)
	r := b.NewReg()
	b.EmitConst(r, 0)
	t1 := b.NewBlock("a")
	b.CondBr(RegVal(r), t1, t1)
	b.SetInsert(t1)
	b.Ret(ConstVal(0))
	m := &Module{Funcs: []*Func{b.Func()}}
	if err := m.Verify(); err == nil {
		t.Fatal("expected error for condbr with identical successors")
	}
}

func TestVerifyCatchesCallArityMismatch(t *testing.T) {
	callee := NewFuncBuilder("callee", []ParamKind{ParamScalar, ParamArray})
	callee.Ret(ConstVal(0))
	caller := NewFuncBuilder("caller", nil)
	r := caller.NewReg()
	caller.EmitCall(r, 0, []Arg{ScalarArg(ConstVal(1))}) // missing array arg
	caller.Ret(ConstVal(0))
	m := &Module{Funcs: []*Func{callee.Func(), caller.Func()}}
	if err := m.Verify(); err == nil {
		t.Fatal("expected arity error")
	}
	// And a shape mismatch: scalar passed where array expected.
	caller2 := NewFuncBuilder("caller2", nil)
	r2 := caller2.NewReg()
	caller2.EmitCall(r2, 0, []Arg{ScalarArg(ConstVal(1)), ScalarArg(ConstVal(2))})
	caller2.Ret(ConstVal(0))
	m2 := &Module{Funcs: []*Func{callee.Func(), caller2.Func()}}
	if err := m2.Verify(); err == nil {
		t.Fatal("expected array/scalar mismatch error")
	}
}

func TestVerifyCatchesBadArrayRef(t *testing.T) {
	b := NewFuncBuilder("f", nil)
	r := b.NewReg()
	b.EmitLoad(r, ArrayRef{Index: 5}, ConstVal(0))
	b.Ret(ConstVal(0))
	m := &Module{Funcs: []*Func{b.Func()}}
	if err := m.Verify(); err == nil {
		t.Fatal("expected error for out-of-range frame array")
	}
	b2 := NewFuncBuilder("g", nil)
	r2 := b2.NewReg()
	b2.EmitLoad(r2, ArrayRef{Global: true, Index: 0}, ConstVal(0))
	b2.Ret(ConstVal(0))
	m2 := &Module{Funcs: []*Func{b2.Func()}}
	if err := m2.Verify(); err == nil {
		t.Fatal("expected error for out-of-range global array")
	}
}

func TestBuilderPanicsOnDoubleTerminate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewFuncBuilder("f", nil)
	b.Ret(ConstVal(0))
	b.Ret(ConstVal(0))
}

func TestBuilderPanicsOnUnterminatedBlock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewFuncBuilder("f", nil)
	_ = b.NewBlock("dangling")
	b.Ret(ConstVal(0))
	b.Func()
}

func TestLocalArrayAllocation(t *testing.T) {
	b := NewFuncBuilder("f", []ParamKind{ParamArray})
	a1 := b.NewLocalArray(10)
	a2 := b.NewLocalArray(20)
	if a1.Index != 1 || a2.Index != 2 {
		t.Fatalf("local arrays must come after array params: got %d, %d", a1.Index, a2.Index)
	}
	b.Ret(ConstVal(0))
	f := b.Func()
	if len(f.LocalArraySizes) != 2 || f.LocalArraySizes[0] != 10 || f.LocalArraySizes[1] != 20 {
		t.Fatalf("local array sizes wrong: %v", f.LocalArraySizes)
	}
}

func TestPrintAndDot(t *testing.T) {
	m := buildDiamond(t)
	text := m.String()
	for _, want := range []string{"func f0 main(int)", "condbr r0, b1, b2", "ret r1"} {
		if !strings.Contains(text, want) {
			t.Errorf("module text missing %q:\n%s", want, text)
		}
	}
	dot := m.Funcs[0].Dot(func(blk, si int) (int64, bool) { return int64(blk*10 + si), true })
	for _, want := range []string{"digraph", "b0 -> b1", "b0 -> b2", `label="1"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q:\n%s", want, dot)
		}
	}
}

func TestModuleFuncIndex(t *testing.T) {
	m := buildDiamond(t)
	if got := m.FuncIndex("main"); got != 0 {
		t.Errorf("FuncIndex(main) = %d", got)
	}
	if got := m.FuncIndex("nope"); got != -1 {
		t.Errorf("FuncIndex(nope) = %d", got)
	}
}
