package ir

import (
	"strings"
	"testing"
)

// buildKitchenSink exercises every builder emission and every
// instruction/terminator String form.
func buildKitchenSink(t *testing.T) *Module {
	t.Helper()
	callee := NewFuncBuilder("callee", []ParamKind{ParamScalar, ParamArray})
	callee.Ret(RegVal(0))

	b := NewFuncBuilder("sink", []ParamKind{ParamScalar})
	b.ReserveRegs(8)
	arr := b.NewLocalArray(4)
	b.SetLocalArraySizes([]int{4, 8})
	x := Reg(1)
	y := Reg(2)
	b.EmitConst(x, 42)
	b.EmitMove(y, RegVal(x))
	b.EmitBin(y, OpAdd, RegVal(x), ConstVal(1))
	b.EmitUn(y, OpNeg, RegVal(x))
	b.EmitLoad(y, arr, ConstVal(0))
	b.EmitStore(arr, ConstVal(1), RegVal(y))
	b.EmitGLoad(y, 0)
	b.EmitGStore(0, RegVal(y))
	b.EmitCall(y, 0, []Arg{ScalarArg(RegVal(x)), ArrayArg(arr)})
	b.EmitOut(RegVal(y))
	swA := b.NewBlock("swA")
	swB := b.NewBlock("swB")
	join := b.NewBlock("join")
	last := b.NewBlock("last")
	b.Switch(RegVal(y), []int64{1, 2}, []int{swA, swB}, join)
	b.SetInsert(swA)
	if b.Terminated() {
		t.Fatal("fresh block reported terminated")
	}
	b.CondBr(RegVal(y), join, last)
	b.SetInsert(swB)
	if got := b.Current(); got != swB {
		t.Fatalf("Current = %d, want %d", got, swB)
	}
	b.Br(join)
	b.SetInsert(join)
	b.Br(last)
	b.SetInsert(last)
	b.Ret(ConstVal(0))

	return &Module{
		Funcs:        []*Func{callee.Func(), b.Func()},
		EntryFunc:    1,
		GlobalNames:  []string{"g0"},
		GlobalArrays: []GlobalArray{{Name: "ga", Size: 16}},
	}
}

func TestKitchenSinkVerifiesAndPrints(t *testing.T) {
	m := buildKitchenSink(t)
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	text := m.String()
	for _, want := range []string{
		"r2 = r1", "r2 = add r1, 1", "r2 = neg r1",
		"a[0][0]", "gs[0]", "call f0(2 args)", "out r2",
		"switch r2, 2 cases", "condbr", "br b", "ret 0",
		"global gs[0] g0", "global g[0] ga[16]",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("module text missing %q:\n%s", want, text)
		}
	}
}

func TestOpAndTermStrings(t *testing.T) {
	ops := map[Op]string{
		OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
		OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
		OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
		OpNeg: "neg", OpNot: "not",
	}
	for op, want := range ops {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
	if got := Op(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown op string %q", got)
	}
	if got := (ArrayRef{Global: true, Index: 3}).String(); got != "g[3]" {
		t.Errorf("global array ref string %q", got)
	}
	if got := (Terminator{Kind: TermRet, Val: ConstVal(5)}).String(); got != "ret 5" {
		t.Errorf("ret string %q", got)
	}
}

func TestVerifyInstrErrorPaths(t *testing.T) {
	mk := func(mutate func(m *Module)) error {
		m := buildKitchenSink(t)
		mutate(m)
		return m.Verify()
	}
	sink := func(m *Module) *Func { return m.Funcs[1] }
	cases := []struct {
		name   string
		mutate func(m *Module)
	}{
		{"const with reg operand", func(m *Module) {
			sink(m).Blocks[0].Instrs[0] = Instr{Kind: InstrConst, Dst: 1, A: RegVal(0)}
		}},
		{"bin with unary op", func(m *Module) {
			sink(m).Blocks[0].Instrs[2].Op = OpNeg
		}},
		{"un with binary op", func(m *Module) {
			sink(m).Blocks[0].Instrs[3].Op = OpAdd
		}},
		{"gload out of range", func(m *Module) {
			sink(m).Blocks[0].Instrs[6].GIndex = 7
		}},
		{"gstore out of range", func(m *Module) {
			sink(m).Blocks[0].Instrs[7].GIndex = -1
		}},
		{"callee out of range", func(m *Module) {
			sink(m).Blocks[0].Instrs[8].Callee = 9
		}},
		{"bad value reg", func(m *Module) {
			sink(m).Blocks[0].Instrs[1].A = RegVal(100)
		}},
		{"store bad index value", func(m *Module) {
			sink(m).Blocks[0].Instrs[5].A = RegVal(-1)
		}},
		{"unknown instr kind", func(m *Module) {
			sink(m).Blocks[0].Instrs[0].Kind = InstrKind(99)
		}},
		{"br wrong succ count", func(m *Module) {
			for _, b := range sink(m).Blocks {
				if b.Term.Kind == TermBr {
					b.Term.Succs = nil
					return
				}
			}
		}},
		{"switch succ mismatch", func(m *Module) {
			for _, b := range sink(m).Blocks {
				if b.Term.Kind == TermSwitch {
					b.Term.Succs = b.Term.Succs[:1]
					return
				}
			}
		}},
		{"switch no cases", func(m *Module) {
			for _, b := range sink(m).Blocks {
				if b.Term.Kind == TermSwitch {
					b.Term.Cases = nil
					b.Term.Succs = b.Term.Succs[:1]
					return
				}
			}
		}},
		{"ret with successors", func(m *Module) {
			last := sink(m).Blocks[len(sink(m).Blocks)-1]
			last.Term.Succs = []int{0}
		}},
		{"unknown term kind", func(m *Module) {
			sink(m).Blocks[0].Term.Kind = TermKind(42)
		}},
		{"nil block", func(m *Module) {
			sink(m).Blocks[1] = nil
		}},
		{"bad block id", func(m *Module) {
			sink(m).Blocks[1].ID = 9
		}},
		{"bad entry index", func(m *Module) {
			m.EntryFunc = 5
		}},
	}
	for _, c := range cases {
		if err := mk(c.mutate); err == nil {
			t.Errorf("%s: expected verify error", c.name)
		}
	}
	if err := (&Module{}).Verify(); err == nil {
		t.Error("empty module should not verify")
	}
	if err := (&Module{Funcs: []*Func{{Name: "e"}}}).Verify(); err == nil {
		t.Error("function without blocks should not verify")
	}
}
