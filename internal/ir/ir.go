// Package ir defines the intermediate representation that branch
// alignment operates on: functions made of basic blocks over virtual
// registers, terminated by unconditional branches, two-way conditional
// branches, multiway switches (the "register branch" class of the paper's
// machine model), or returns.
//
// The representation is deliberately un-SSA: registers are mutable slots,
// which keeps lowering (package lower) and interpretation (package
// interp) simple while still producing realistic control-flow graphs.
package ir

import "fmt"

// Reg names a virtual register (a mutable int64 slot) within a function.
type Reg int

// Value is an instruction operand: either a constant or a register.
type Value struct {
	IsConst bool
	Const   int64
	Reg     Reg
}

// ConstVal returns a constant operand.
func ConstVal(c int64) Value { return Value{IsConst: true, Const: c} }

// RegVal returns a register operand.
func RegVal(r Reg) Value { return Value{Reg: r} }

func (v Value) String() string {
	if v.IsConst {
		return fmt.Sprintf("%d", v.Const)
	}
	return fmt.Sprintf("r%d", v.Reg)
}

// Op enumerates binary and unary operators.
type Op int

// Binary and unary operators. Comparison operators yield 0 or 1.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpNeg // unary minus
	OpNot // logical not: 1 if operand == 0, else 0
)

var opNames = map[Op]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
	OpNeg: "neg", OpNot: "not",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// ArrayRef names an array: either a module-level global array or an entry
// in the function's frame array list (array parameters first, then local
// arrays).
type ArrayRef struct {
	Global bool
	Index  int
}

func (a ArrayRef) String() string {
	if a.Global {
		return fmt.Sprintf("g[%d]", a.Index)
	}
	return fmt.Sprintf("a[%d]", a.Index)
}

// InstrKind discriminates Instr.
type InstrKind int

// Instruction kinds.
const (
	InstrConst  InstrKind = iota // Dst = A (A constant)
	InstrMove                    // Dst = A
	InstrBin                     // Dst = A Op B
	InstrUn                      // Dst = Op A
	InstrLoad                    // Dst = Arr[A]
	InstrStore                   // Arr[A] = B
	InstrGLoad                   // Dst = global scalar GIndex
	InstrGStore                  // global scalar GIndex = A
	InstrCall                    // Dst = Callee(Args...)
	InstrOut                     // append A to the program output stream
)

// Arg is a call argument: a scalar value or an array reference from the
// caller's frame.
type Arg struct {
	IsArray bool
	Val     Value
	Arr     ArrayRef
}

// ScalarArg wraps a Value as a call argument.
func ScalarArg(v Value) Arg { return Arg{Val: v} }

// ArrayArg wraps an ArrayRef as a call argument.
func ArrayArg(a ArrayRef) Arg { return Arg{IsArray: true, Arr: a} }

// Instr is a non-terminator instruction.
type Instr struct {
	Kind   InstrKind
	Dst    Reg
	Op     Op
	A, B   Value
	Arr    ArrayRef
	GIndex int
	Callee int // function index within the module
	Args   []Arg
}

func (in Instr) String() string {
	switch in.Kind {
	case InstrConst, InstrMove:
		return fmt.Sprintf("r%d = %s", in.Dst, in.A)
	case InstrBin:
		return fmt.Sprintf("r%d = %s %s, %s", in.Dst, in.Op, in.A, in.B)
	case InstrUn:
		return fmt.Sprintf("r%d = %s %s", in.Dst, in.Op, in.A)
	case InstrLoad:
		return fmt.Sprintf("r%d = %s[%s]", in.Dst, in.Arr, in.A)
	case InstrStore:
		return fmt.Sprintf("%s[%s] = %s", in.Arr, in.A, in.B)
	case InstrGLoad:
		return fmt.Sprintf("r%d = gs[%d]", in.Dst, in.GIndex)
	case InstrGStore:
		return fmt.Sprintf("gs[%d] = %s", in.GIndex, in.A)
	case InstrCall:
		return fmt.Sprintf("r%d = call f%d(%d args)", in.Dst, in.Callee, len(in.Args))
	case InstrOut:
		return fmt.Sprintf("out %s", in.A)
	}
	return "instr?"
}

// TermKind discriminates Terminator.
type TermKind int

// Terminator kinds. The mapping to the machine model's branch classes
// (package machine) is: TermBr blocks either fall through (no branch) or
// need an inserted unconditional jump; TermCondBr is a conditional
// branch; TermSwitch is a multiway/register branch; TermRet leaves the
// procedure and is layout-independent.
const (
	TermBr TermKind = iota
	TermCondBr
	TermSwitch
	TermRet
)

// Terminator ends a basic block.
type Terminator struct {
	Kind TermKind
	// Cond is the condition for TermCondBr (nonzero takes Succs[0]) and
	// the scrutinee for TermSwitch.
	Cond Value
	// Val is the return value for TermRet.
	Val Value
	// Succs lists successor block IDs. TermBr: one target. TermCondBr:
	// [then, else]. TermSwitch: one target per case followed by the
	// default target. TermRet: empty.
	Succs []int
	// Cases holds the switch case values; len(Cases) == len(Succs)-1.
	Cases []int64
}

func (t Terminator) String() string {
	switch t.Kind {
	case TermBr:
		return fmt.Sprintf("br b%d", t.Succs[0])
	case TermCondBr:
		return fmt.Sprintf("condbr %s, b%d, b%d", t.Cond, t.Succs[0], t.Succs[1])
	case TermSwitch:
		return fmt.Sprintf("switch %s, %d cases, default b%d", t.Cond, len(t.Cases), t.Succs[len(t.Succs)-1])
	case TermRet:
		return fmt.Sprintf("ret %s", t.Val)
	}
	return "term?"
}

// Block is a basic block.
type Block struct {
	ID     int
	Name   string
	Instrs []Instr
	Term   Terminator
}

// Size returns the block's size in instruction slots, counting the
// terminator when it occupies an instruction (returns and conditional or
// multiway branches always do; a TermBr may be elided by layout, so it is
// not counted here — package layout adds fixup jumps explicitly).
func (b *Block) Size() int {
	n := len(b.Instrs)
	switch b.Term.Kind {
	case TermCondBr, TermSwitch, TermRet:
		n++
	}
	return n
}

// ParamKind distinguishes scalar from array parameters.
type ParamKind int

// Parameter kinds.
const (
	ParamScalar ParamKind = iota
	ParamArray
)

// Func is a function: a CFG of basic blocks. Block 0 is the entry block.
type Func struct {
	Name   string
	Params []ParamKind
	// NumRegs is the register-file size. Scalar parameters are bound to
	// registers 0..k-1 in parameter order (skipping array parameters).
	NumRegs int
	// LocalArraySizes gives the sizes of fresh arrays allocated per call.
	// In an ArrayRef with Global == false, indices < NumArrayParams()
	// refer to array parameters in order; index NumArrayParams()+i refers
	// to LocalArraySizes[i].
	LocalArraySizes []int
	Blocks          []*Block
}

// NumArrayParams counts the array parameters of f.
func (f *Func) NumArrayParams() int {
	n := 0
	for _, p := range f.Params {
		if p == ParamArray {
			n++
		}
	}
	return n
}

// NumScalarParams counts the scalar parameters of f.
func (f *Func) NumScalarParams() int {
	return len(f.Params) - f.NumArrayParams()
}

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// Preds computes the predecessor lists of every block.
func (f *Func) Preds() [][]int {
	preds := make([][]int, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Term.Succs {
			preds[s] = append(preds[s], b.ID)
		}
	}
	return preds
}

// GlobalArray declares a module-level array.
type GlobalArray struct {
	Name string
	Size int
}

// Module is a compiled program: functions plus global storage
// declarations. Funcs[EntryFunc] is the program entry point.
type Module struct {
	Funcs        []*Func
	EntryFunc    int
	GlobalNames  []string // scalar global names, index = GIndex
	GlobalArrays []GlobalArray
}

// FuncIndex returns the index of the function with the given name, or -1.
func (m *Module) FuncIndex(name string) int {
	for i, f := range m.Funcs {
		if f.Name == name {
			return i
		}
	}
	return -1
}
