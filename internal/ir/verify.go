package ir

import "fmt"

// Verify checks structural invariants of a module: block IDs match their
// positions, successor references are in range, terminator shapes are
// well-formed, register and array references are within the declared
// frame, call targets and argument shapes match callee signatures, and
// switch cases are unique. It returns the first violation found.
func (m *Module) Verify() error {
	if len(m.Funcs) == 0 {
		return fmt.Errorf("ir: module has no functions")
	}
	if m.EntryFunc < 0 || m.EntryFunc >= len(m.Funcs) {
		return fmt.Errorf("ir: entry function index %d out of range", m.EntryFunc)
	}
	for fi, f := range m.Funcs {
		if err := m.verifyFunc(f); err != nil {
			return fmt.Errorf("ir: func %d (%s): %w", fi, f.Name, err)
		}
	}
	return nil
}

func (m *Module) verifyFunc(f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	nArrays := f.NumArrayParams() + len(f.LocalArraySizes)
	checkVal := func(v Value) error {
		if !v.IsConst && (v.Reg < 0 || int(v.Reg) >= f.NumRegs) {
			return fmt.Errorf("register r%d out of range (%d regs)", v.Reg, f.NumRegs)
		}
		return nil
	}
	checkReg := func(r Reg) error {
		if r < 0 || int(r) >= f.NumRegs {
			return fmt.Errorf("register r%d out of range (%d regs)", r, f.NumRegs)
		}
		return nil
	}
	checkArr := func(a ArrayRef) error {
		if a.Global {
			if a.Index < 0 || a.Index >= len(m.GlobalArrays) {
				return fmt.Errorf("global array %d out of range", a.Index)
			}
			return nil
		}
		if a.Index < 0 || a.Index >= nArrays {
			return fmt.Errorf("frame array %d out of range (%d arrays)", a.Index, nArrays)
		}
		return nil
	}
	for bi, b := range f.Blocks {
		if b == nil {
			return fmt.Errorf("block %d is nil", bi)
		}
		if b.ID != bi {
			return fmt.Errorf("block at position %d has ID %d", bi, b.ID)
		}
		for ii, in := range b.Instrs {
			if err := m.verifyInstr(f, in, checkVal, checkReg, checkArr); err != nil {
				return fmt.Errorf("block %d instr %d (%s): %w", bi, ii, in, err)
			}
		}
		if err := verifyTerm(f, b.Term, checkVal); err != nil {
			return fmt.Errorf("block %d terminator (%s): %w", bi, b.Term, err)
		}
	}
	return nil
}

func (m *Module) verifyInstr(f *Func, in Instr, checkVal func(Value) error, checkReg func(Reg) error, checkArr func(ArrayRef) error) error {
	switch in.Kind {
	case InstrConst:
		if !in.A.IsConst {
			return fmt.Errorf("const instruction with non-constant operand")
		}
		return firstErr(checkReg(in.Dst))
	case InstrMove:
		return firstErr(checkReg(in.Dst), checkVal(in.A))
	case InstrBin:
		if in.Op > OpGe {
			return fmt.Errorf("operator %s is not binary", in.Op)
		}
		return firstErr(checkReg(in.Dst), checkVal(in.A), checkVal(in.B))
	case InstrUn:
		if in.Op != OpNeg && in.Op != OpNot {
			return fmt.Errorf("operator %s is not unary", in.Op)
		}
		return firstErr(checkReg(in.Dst), checkVal(in.A))
	case InstrLoad:
		return firstErr(checkReg(in.Dst), checkVal(in.A), checkArr(in.Arr))
	case InstrStore:
		return firstErr(checkVal(in.A), checkVal(in.B), checkArr(in.Arr))
	case InstrGLoad:
		if in.GIndex < 0 || in.GIndex >= len(m.GlobalNames) {
			return fmt.Errorf("global scalar %d out of range", in.GIndex)
		}
		return firstErr(checkReg(in.Dst))
	case InstrGStore:
		if in.GIndex < 0 || in.GIndex >= len(m.GlobalNames) {
			return fmt.Errorf("global scalar %d out of range", in.GIndex)
		}
		return firstErr(checkVal(in.A))
	case InstrCall:
		if in.Callee < 0 || in.Callee >= len(m.Funcs) {
			return fmt.Errorf("callee %d out of range", in.Callee)
		}
		callee := m.Funcs[in.Callee]
		if len(in.Args) != len(callee.Params) {
			return fmt.Errorf("call to %s with %d args, want %d", callee.Name, len(in.Args), len(callee.Params))
		}
		for ai, a := range in.Args {
			wantArray := callee.Params[ai] == ParamArray
			if a.IsArray != wantArray {
				return fmt.Errorf("arg %d of call to %s: array mismatch", ai, callee.Name)
			}
			if a.IsArray {
				if err := checkArr(a.Arr); err != nil {
					return err
				}
			} else if err := checkVal(a.Val); err != nil {
				return err
			}
		}
		return firstErr(checkReg(in.Dst))
	case InstrOut:
		return firstErr(checkVal(in.A))
	}
	return fmt.Errorf("unknown instruction kind %d", in.Kind)
}

func verifyTerm(f *Func, t Terminator, checkVal func(Value) error) error {
	inRange := func(id int) error {
		if id < 0 || id >= len(f.Blocks) {
			return fmt.Errorf("successor b%d out of range", id)
		}
		return nil
	}
	switch t.Kind {
	case TermBr:
		if len(t.Succs) != 1 {
			return fmt.Errorf("br needs exactly 1 successor, has %d", len(t.Succs))
		}
		return inRange(t.Succs[0])
	case TermCondBr:
		if len(t.Succs) != 2 {
			return fmt.Errorf("condbr needs exactly 2 successors, has %d", len(t.Succs))
		}
		if t.Succs[0] == t.Succs[1] {
			return fmt.Errorf("condbr with identical successors should be a br")
		}
		return firstErr(checkVal(t.Cond), inRange(t.Succs[0]), inRange(t.Succs[1]))
	case TermSwitch:
		if len(t.Succs) != len(t.Cases)+1 {
			return fmt.Errorf("switch with %d cases needs %d successors, has %d", len(t.Cases), len(t.Cases)+1, len(t.Succs))
		}
		if len(t.Cases) == 0 {
			return fmt.Errorf("switch with no cases should be a br")
		}
		seen := make(map[int64]bool, len(t.Cases))
		for _, c := range t.Cases {
			if seen[c] {
				return fmt.Errorf("duplicate switch case %d", c)
			}
			seen[c] = true
		}
		if err := checkVal(t.Cond); err != nil {
			return err
		}
		for _, s := range t.Succs {
			if err := inRange(s); err != nil {
				return err
			}
		}
		return nil
	case TermRet:
		if len(t.Succs) != 0 {
			return fmt.Errorf("ret must not have successors")
		}
		return checkVal(t.Val)
	}
	return fmt.Errorf("unknown terminator kind %d", t.Kind)
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
