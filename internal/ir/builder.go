package ir

import "fmt"

// FuncBuilder incrementally constructs a Func. It manages block creation,
// register allocation and terminator placement; package lower and tests
// use it to assemble CFGs without tracking indices by hand.
type FuncBuilder struct {
	f      *Func
	cur    *Block
	sealed map[int]bool
}

// NewFuncBuilder starts a function with the given name and parameters.
// Scalar parameters are pre-assigned registers 0..k-1 in order; array
// parameters occupy frame array slots 0..m-1 in order. The entry block is
// created and selected.
func NewFuncBuilder(name string, params []ParamKind) *FuncBuilder {
	f := &Func{Name: name, Params: append([]ParamKind(nil), params...)}
	f.NumRegs = f.NumScalarParams()
	b := &FuncBuilder{f: f, sealed: map[int]bool{}}
	entry := b.NewBlock("entry")
	b.SetInsert(entry)
	return b
}

// Func finalizes and returns the function. Every block must have been
// terminated.
func (b *FuncBuilder) Func() *Func {
	for _, blk := range b.f.Blocks {
		if !b.sealed[blk.ID] {
			panic(fmt.Sprintf("ir: builder: block b%d (%s) of %s has no terminator", blk.ID, blk.Name, b.f.Name))
		}
	}
	return b.f
}

// NewBlock appends an empty block and returns its ID.
func (b *FuncBuilder) NewBlock(name string) int {
	blk := &Block{ID: len(b.f.Blocks), Name: name}
	b.f.Blocks = append(b.f.Blocks, blk)
	return blk.ID
}

// SetInsert selects the block that subsequent emissions append to.
func (b *FuncBuilder) SetInsert(id int) {
	b.cur = b.f.Blocks[id]
}

// Current returns the ID of the insertion block.
func (b *FuncBuilder) Current() int { return b.cur.ID }

// NewReg allocates a fresh virtual register.
func (b *FuncBuilder) NewReg() Reg {
	r := Reg(b.f.NumRegs)
	b.f.NumRegs++
	return r
}

// ReserveRegs grows the register file to at least n registers, for
// callers (like package lower) that pre-assign register numbers to named
// variables.
func (b *FuncBuilder) ReserveRegs(n int) {
	if n > b.f.NumRegs {
		b.f.NumRegs = n
	}
}

// SetLocalArraySizes installs the per-call array sizes wholesale, for
// callers that pre-assign frame slots. It replaces any arrays created via
// NewLocalArray.
func (b *FuncBuilder) SetLocalArraySizes(sizes []int) {
	b.f.LocalArraySizes = append([]int(nil), sizes...)
}

// NewLocalArray allocates a per-call array of the given size and returns
// its frame reference.
func (b *FuncBuilder) NewLocalArray(size int) ArrayRef {
	idx := b.f.NumArrayParams() + len(b.f.LocalArraySizes)
	b.f.LocalArraySizes = append(b.f.LocalArraySizes, size)
	return ArrayRef{Index: idx}
}

func (b *FuncBuilder) emit(in Instr) {
	if b.sealed[b.cur.ID] {
		panic(fmt.Sprintf("ir: builder: emitting into terminated block b%d of %s", b.cur.ID, b.f.Name))
	}
	b.cur.Instrs = append(b.cur.Instrs, in)
}

// EmitConst emits dst = c.
func (b *FuncBuilder) EmitConst(dst Reg, c int64) {
	b.emit(Instr{Kind: InstrConst, Dst: dst, A: ConstVal(c)})
}

// EmitMove emits dst = v.
func (b *FuncBuilder) EmitMove(dst Reg, v Value) {
	b.emit(Instr{Kind: InstrMove, Dst: dst, A: v})
}

// EmitBin emits dst = x op y.
func (b *FuncBuilder) EmitBin(dst Reg, op Op, x, y Value) {
	b.emit(Instr{Kind: InstrBin, Dst: dst, Op: op, A: x, B: y})
}

// EmitUn emits dst = op x.
func (b *FuncBuilder) EmitUn(dst Reg, op Op, x Value) {
	b.emit(Instr{Kind: InstrUn, Dst: dst, Op: op, A: x})
}

// EmitLoad emits dst = arr[idx].
func (b *FuncBuilder) EmitLoad(dst Reg, arr ArrayRef, idx Value) {
	b.emit(Instr{Kind: InstrLoad, Dst: dst, Arr: arr, A: idx})
}

// EmitStore emits arr[idx] = v.
func (b *FuncBuilder) EmitStore(arr ArrayRef, idx, v Value) {
	b.emit(Instr{Kind: InstrStore, Arr: arr, A: idx, B: v})
}

// EmitGLoad emits dst = global scalar gi.
func (b *FuncBuilder) EmitGLoad(dst Reg, gi int) {
	b.emit(Instr{Kind: InstrGLoad, Dst: dst, GIndex: gi})
}

// EmitGStore emits global scalar gi = v.
func (b *FuncBuilder) EmitGStore(gi int, v Value) {
	b.emit(Instr{Kind: InstrGStore, GIndex: gi, A: v})
}

// EmitCall emits dst = callee(args...).
func (b *FuncBuilder) EmitCall(dst Reg, callee int, args []Arg) {
	b.emit(Instr{Kind: InstrCall, Dst: dst, Callee: callee, Args: args})
}

// EmitOut emits out(v).
func (b *FuncBuilder) EmitOut(v Value) {
	b.emit(Instr{Kind: InstrOut, A: v})
}

func (b *FuncBuilder) terminate(t Terminator) {
	if b.sealed[b.cur.ID] {
		panic(fmt.Sprintf("ir: builder: block b%d of %s already terminated", b.cur.ID, b.f.Name))
	}
	b.cur.Term = t
	b.sealed[b.cur.ID] = true
}

// Br terminates the insertion block with an unconditional branch.
func (b *FuncBuilder) Br(target int) {
	b.terminate(Terminator{Kind: TermBr, Succs: []int{target}})
}

// CondBr terminates with a conditional branch (nonzero cond takes then).
func (b *FuncBuilder) CondBr(cond Value, then, els int) {
	b.terminate(Terminator{Kind: TermCondBr, Cond: cond, Succs: []int{then, els}})
}

// Switch terminates with a multiway branch.
func (b *FuncBuilder) Switch(v Value, cases []int64, targets []int, deflt int) {
	succs := append(append([]int(nil), targets...), deflt)
	b.terminate(Terminator{Kind: TermSwitch, Cond: v, Cases: append([]int64(nil), cases...), Succs: succs})
}

// Ret terminates with a return.
func (b *FuncBuilder) Ret(v Value) {
	b.terminate(Terminator{Kind: TermRet, Val: v})
}

// Terminated reports whether the insertion block already has a
// terminator (used by lowering to avoid double-sealing after returns and
// breaks).
func (b *FuncBuilder) Terminated() bool { return b.sealed[b.cur.ID] }
