package machine

import "testing"

// TestAlpha21164MatchesTable3 pins the exact penalty values from the
// paper's Table 3 ("A summary of the control penalties in our 21164
// machine model"): misfetch = 1 cycle, conditional mispredict = 5 cycles,
// inserted unconditional branch = 2 cycles, register-branch mispredict =
// 3 cycles.
func TestAlpha21164MatchesTable3(t *testing.T) {
	m := Alpha21164()
	checks := []struct {
		name string
		got  Cost
		want Cost
	}{
		{"JumpCost", m.JumpCost, 2},
		{"CondFallthroughCorrect", m.CondFallthroughCorrect, 0},
		{"CondTakenCorrect", m.CondTakenCorrect, 1},
		{"CondMispredict", m.CondMispredict, 5},
		{"MultiCorrectFallthrough", m.MultiCorrectFallthrough, 0},
		{"MultiCorrectTaken", m.MultiCorrectTaken, 1},
		{"MultiMispredict", m.MultiMispredict, 3},
		{"RetCost", m.RetCost, 1},
		{"CallCost", m.CallCost, 1},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
	if m.Name != "alpha21164" {
		t.Errorf("Name = %q", m.Name)
	}
}

func TestModelOrderingAblation(t *testing.T) {
	shallow, alpha, deep := ShallowPipe(), Alpha21164(), DeepPipe()
	if !(shallow.CondMispredict < alpha.CondMispredict && alpha.CondMispredict < deep.CondMispredict) {
		t.Error("mispredict penalties should be ordered shallow < alpha < deep")
	}
	if !(shallow.MultiMispredict < alpha.MultiMispredict && alpha.MultiMispredict < deep.MultiMispredict) {
		t.Error("register-branch penalties should be ordered shallow < alpha < deep")
	}
}

func TestModelsListsPaperModelFirst(t *testing.T) {
	models := Models()
	if len(models) < 3 {
		t.Fatalf("expected at least 3 models, got %d", len(models))
	}
	if models[0].Name != "alpha21164" {
		t.Errorf("first model = %q, want alpha21164", models[0].Name)
	}
}

func TestCacheAwareSurcharge(t *testing.T) {
	base := Alpha21164()
	aware := CacheAware(base, 2)
	if aware.Name != "alpha21164+cache" {
		t.Errorf("Name = %q", aware.Name)
	}
	// Taken events gain the surcharge...
	if aware.JumpCost != base.JumpCost+2 ||
		aware.CondTakenCorrect != base.CondTakenCorrect+2 ||
		aware.CondMispredict != base.CondMispredict+2 ||
		aware.MultiCorrectTaken != base.MultiCorrectTaken+2 ||
		aware.MultiMispredict != base.MultiMispredict+2 {
		t.Errorf("surcharge not applied uniformly: %+v", aware)
	}
	// ...fall-through events do not.
	if aware.CondFallthroughCorrect != base.CondFallthroughCorrect ||
		aware.MultiCorrectFallthrough != base.MultiCorrectFallthrough {
		t.Errorf("fall-through penalties must be untouched: %+v", aware)
	}
	// Layout-independent costs unchanged.
	if aware.RetCost != base.RetCost || aware.CallCost != base.CallCost {
		t.Errorf("call/ret costs must be untouched")
	}
}

func TestTableRendering(t *testing.T) {
	rows := Alpha21164().Table()
	if len(rows) != 10 {
		t.Fatalf("Table has %d rows, want 10", len(rows))
	}
	// Spot-check the signature rows of Table 3.
	if rows[1].Penalty != 2 {
		t.Errorf("unconditional-branch row penalty = %d, want 2", rows[1].Penalty)
	}
	if rows[4].Penalty != 5 {
		t.Errorf("conditional mispredict row penalty = %d, want 5", rows[4].Penalty)
	}
	if rows[7].Penalty != 3 {
		t.Errorf("register mispredict row penalty = %d, want 3", rows[7].Penalty)
	}
}
