// Package machine defines the control-penalty models that drive branch
// alignment. A Model captures, in cycles, the cost of every block-ending
// control event of the paper's Table 3. The reduction to a DTSP only
// assumes that the number of penalty cycles at the end of a block depends
// on which block succeeds it in the layout, which every Model here
// satisfies (BTFNT-style predictors would not).
package machine

// Cost is a penalty in cycles. It aliases int64 and is interchangeable
// with tsp.Cost.
type Cost = int64

// Model is a control-penalty parameterization of a target pipeline,
// following Table 3 of the paper. Conditional branches are statically
// predicted toward their most frequent CFG successor; multiway (register)
// branches are predicted toward their most frequent target.
type Model struct {
	// Name identifies the model in reports.
	Name string

	// JumpCost is the per-execution cost of an inserted unconditional
	// branch: the branch instruction itself plus the misfetch penalty
	// (Table 3 row "unconditional branch", P_TT = 2 on the Alpha 21164).
	// A block that falls through to its single CFG successor costs 0.
	JumpCost Cost

	// CondFallthroughCorrect is the cost when a conditional branch falls
	// through to its predicted successor (P_NN, 0).
	CondFallthroughCorrect Cost
	// CondTakenCorrect is the cost when a conditional branch jumps to its
	// predicted successor placed elsewhere: the misfetch penalty (P_TT, 1).
	CondTakenCorrect Cost
	// CondMispredict is the cost of a mispredicted conditional branch in
	// any layout (P_NT and P_TN, 5 on the Alpha 21164: the branch
	// direction resolves at the end of the sixth pipeline stage).
	CondMispredict Cost

	// MultiCorrectFallthrough is the cost when a multiway/register branch
	// transfers to its predicted target and that target is the layout
	// successor (P_NN, 0).
	MultiCorrectFallthrough Cost
	// MultiCorrectTaken is the cost when a multiway branch transfers to
	// its predicted target placed elsewhere (P_TT, 1: misfetch only).
	MultiCorrectTaken Cost
	// MultiMispredict is the cost of a register branch to any other CFG
	// successor (P_NT / P_TN, 3 on the Alpha 21164: indirect targets
	// resolve earlier than conditional directions).
	MultiMispredict Cost

	// RetCost is the constant per-execution cost of a return (predicted
	// by the return-address stack; misfetch only). Returns are layout-
	// independent, so this never enters alignment costs; the pipeline
	// simulator charges it.
	RetCost Cost
	// CallCost is the constant per-execution cost of a direct call
	// (correctly predicted taken; misfetch only). Layout-independent,
	// charged only by the pipeline simulator.
	CallCost Cost
}

// Alpha21164 returns the paper's machine model: the Digital Alpha 21164
// pipeline of Figure 1, with a misfetch penalty of 1 cycle and a
// conditional mispredict penalty of 5 cycles.
func Alpha21164() Model {
	return Model{
		Name:                    "alpha21164",
		JumpCost:                2,
		CondFallthroughCorrect:  0,
		CondTakenCorrect:        1,
		CondMispredict:          5,
		MultiCorrectFallthrough: 0,
		MultiCorrectTaken:       1,
		MultiMispredict:         3,
		RetCost:                 1,
		CallCost:                1,
	}
}

// ShallowPipe returns a short-pipeline model (small mispredict penalties),
// used for the "other machine models" ablation the paper lists as future
// work: with cheap mispredicts, alignment benefits shrink.
func ShallowPipe() Model {
	return Model{
		Name:                    "shallow",
		JumpCost:                2,
		CondFallthroughCorrect:  0,
		CondTakenCorrect:        1,
		CondMispredict:          2,
		MultiCorrectFallthrough: 0,
		MultiCorrectTaken:       1,
		MultiMispredict:         1,
		RetCost:                 1,
		CallCost:                1,
	}
}

// DeepPipe returns a long-pipeline model (large mispredict penalties),
// the opposite ablation point: alignment matters more.
func DeepPipe() Model {
	return Model{
		Name:                    "deep",
		JumpCost:                3,
		CondFallthroughCorrect:  0,
		CondTakenCorrect:        2,
		CondMispredict:          12,
		MultiCorrectFallthrough: 0,
		MultiCorrectTaken:       2,
		MultiMispredict:         8,
		RetCost:                 2,
		CallCost:                2,
	}
}

// Models returns the built-in models, the paper's first.
func Models() []Model {
	return []Model{Alpha21164(), ShallowPipe(), DeepPipe()}
}

// CacheAware returns a copy of m with extra cycles folded into every
// fetch-redirecting control event. The paper's conclusion suggests
// exactly this refinement: "good branch alignments also appear to be
// good for caching ... This suggests that we should update the weights
// to reflect caching costs." Charging taken transfers an extra toll
// biases the DTSP toward layouts with longer fall-through runs, which
// pack hot code into fewer cache lines.
//
// The surcharge is approximate in one place: CondMispredict applies to
// both taken and fall-through mispredicts, so fall-through mispredicts
// are overcharged by extra; on profiled code mispredicts are rare on
// both paths, and the bias this introduces is toward the same objective.
func CacheAware(m Model, extra Cost) Model {
	m.Name += "+cache"
	m.JumpCost += extra
	m.CondTakenCorrect += extra
	m.CondMispredict += extra
	m.MultiCorrectTaken += extra
	m.MultiMispredict += extra
	return m
}

// TableRow is one line of the Table 3 rendering.
type TableRow struct {
	Event   string
	Penalty Cost
	Term    string
}

// Table renders the model as the rows of the paper's Table 3.
func (m Model) Table() []TableRow {
	return []TableRow{
		{"no branch (fall through to single CFG successor)", 0, "P_NN"},
		{"inserted unconditional branch", m.JumpCost, "P_TT"},
		{"conditional: fall through to (common) following block", m.CondFallthroughCorrect, "P_NN"},
		{"conditional: branch to (common) following block", m.CondTakenCorrect, "P_TT"},
		{"conditional: mispredict, any layout", m.CondMispredict, "P_NT / P_TN"},
		{"register: fall through to (common) following block", m.MultiCorrectFallthrough, "P_NN"},
		{"register: branch to (common) following block", m.MultiCorrectTaken, "P_TT"},
		{"register: branch to any other CFG successor", m.MultiMispredict, "P_NT / P_TN"},
		{"return (layout independent, simulation only)", m.RetCost, "-"},
		{"call (layout independent, simulation only)", m.CallCost, "-"},
	}
}
