package machine

// Stage describes one pipeline stage of the modeled processor, following
// the paper's Figure 1 ("Pipeline diagram for the Digital Alpha 21164
// microprocessor: it has a misfetch penalty of 1 cycle and a conditional
// branch mispredict penalty of 5 cycles").
type Stage struct {
	// Index is the 0-based stage number.
	Index int
	// Name is the stage's role.
	Name string
	// TargetKnown marks the stage at whose end a branch's target address
	// is available.
	TargetKnown bool
	// ConditionKnown marks the stage at whose end a conditional branch's
	// direction is resolved.
	ConditionKnown bool
}

// Pipeline is an ordered stage list with the derivation of the penalty
// constants.
type Pipeline struct {
	Name   string
	Stages []Stage
}

// Alpha21164Pipeline reproduces Figure 1: the next fetch address is
// needed by the end of stage 0, the predicted target is available at the
// end of stage 1 (misfetch = 1), and the branch condition resolves at
// the end of stage 5 (mispredict = 5).
func Alpha21164Pipeline() Pipeline {
	return Pipeline{
		Name: "alpha21164",
		Stages: []Stage{
			{Index: 0, Name: "instruction fetch"},
			{Index: 1, Name: "buffer & decode", TargetKnown: true},
			{Index: 2, Name: "multi-issue slotting"},
			{Index: 3, Name: "register read / issue"},
			{Index: 4, Name: "execute one"},
			{Index: 5, Name: "execute two", ConditionKnown: true},
			{Index: 6, Name: "register write back"},
		},
	}
}

// MisfetchPenalty derives the misfetch cost from the stage structure:
// the number of stages between needing the next fetch address (end of
// stage 0) and knowing the target (end of the TargetKnown stage).
func (p Pipeline) MisfetchPenalty() Cost {
	for _, s := range p.Stages {
		if s.TargetKnown {
			return Cost(s.Index)
		}
	}
	return 0
}

// MispredictPenalty derives the mispredict cost: stages between needing
// the next fetch address and resolving the condition.
func (p Pipeline) MispredictPenalty() Cost {
	for _, s := range p.Stages {
		if s.ConditionKnown {
			return Cost(s.Index)
		}
	}
	return 0
}
