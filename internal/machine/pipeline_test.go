package machine

import "testing"

// TestFigure1DerivesTable3 ties the two paper artifacts together: the
// pipeline diagram of Figure 1 must derive exactly the penalty constants
// of Table 3 that Alpha21164() hard-codes.
func TestFigure1DerivesTable3(t *testing.T) {
	p := Alpha21164Pipeline()
	m := Alpha21164()
	if got := p.MisfetchPenalty(); got != m.CondTakenCorrect {
		t.Errorf("derived misfetch %d != model's taken-correct penalty %d", got, m.CondTakenCorrect)
	}
	if got := p.MispredictPenalty(); got != m.CondMispredict {
		t.Errorf("derived mispredict %d != model's mispredict penalty %d", got, m.CondMispredict)
	}
	// The inserted-jump cost is the branch slot itself plus the misfetch.
	if m.JumpCost != 1+p.MisfetchPenalty() {
		t.Errorf("JumpCost %d != 1 + misfetch %d", m.JumpCost, p.MisfetchPenalty())
	}
}

func TestPipelineShape(t *testing.T) {
	p := Alpha21164Pipeline()
	if len(p.Stages) != 7 {
		t.Fatalf("21164 model has %d stages, want 7", len(p.Stages))
	}
	for i, s := range p.Stages {
		if s.Index != i {
			t.Errorf("stage %d has index %d", i, s.Index)
		}
		if s.Name == "" {
			t.Errorf("stage %d unnamed", i)
		}
	}
}

func TestPipelinePenaltiesZeroWithoutMarks(t *testing.T) {
	p := Pipeline{Stages: []Stage{{Index: 0, Name: "only"}}}
	if p.MisfetchPenalty() != 0 || p.MispredictPenalty() != 0 {
		t.Error("unmarked pipeline should derive zero penalties")
	}
}
