package minic

import "fmt"

// Parser is a recursive-descent parser for Mini-C.
type Parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses a complete Mini-C program.
func Parse(src string) (*Program, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseProgram()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) expect(k TokKind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, errf(t.Pos, "expected %s, found %s", k, describe(t))
	}
	p.pos++
	return t, nil
}

func describe(t Token) string {
	switch t.Kind {
	case TokIdent:
		return fmt.Sprintf("identifier %q", t.Text)
	case TokNumber:
		return fmt.Sprintf("number %s", t.Text)
	default:
		return fmt.Sprintf("%q", t.Kind.String())
	}
}

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for p.cur().Kind != TokEOF {
		switch p.cur().Kind {
		case TokGlobal:
			g, err := p.parseGlobal()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, g)
		case TokFunc:
			f, err := p.parseFunc()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, f)
		default:
			return nil, errf(p.cur().Pos, "expected top-level 'global' or 'func', found %s", describe(p.cur()))
		}
	}
	return prog, nil
}

func (p *Parser) parseGlobal() (*GlobalDecl, error) {
	kw, _ := p.expect(TokGlobal)
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	g := &GlobalDecl{Pos: kw.Pos, Name: name.Text}
	if p.cur().Kind == TokLBracket {
		p.next()
		size, err := p.expect(TokNumber)
		if err != nil {
			return nil, err
		}
		if size.Num <= 0 {
			return nil, errf(size.Pos, "array size must be positive, got %d", size.Num)
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		g.IsArray = true
		g.Size = size.Num
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return g, nil
}

func (p *Parser) parseFunc() (*FuncDecl, error) {
	kw, _ := p.expect(TokFunc)
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	f := &FuncDecl{Pos: kw.Pos, Name: name.Text}
	for p.cur().Kind != TokRParen {
		if len(f.Params) > 0 {
			if _, err := p.expect(TokComma); err != nil {
				return nil, err
			}
		}
		pn, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		param := Param{Pos: pn.Pos, Name: pn.Text}
		if p.cur().Kind == TokLBracket {
			p.next()
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			param.IsArray = true
		}
		f.Params = append(f.Params, param)
	}
	p.next() // ')'
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{Pos: lb.Pos}
	for p.cur().Kind != TokRBrace {
		if p.cur().Kind == TokEOF {
			return nil, errf(lb.Pos, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.Stmts = append(blk.Stmts, s)
	}
	p.next() // '}'
	return blk, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch p.cur().Kind {
	case TokVar:
		return p.parseVarDecl()
	case TokIf:
		return p.parseIf()
	case TokWhile:
		return p.parseWhile()
	case TokFor:
		return p.parseFor()
	case TokSwitch:
		return p.parseSwitch()
	case TokBreak:
		t := p.next()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: t.Pos}, nil
	case TokContinue:
		t := p.next()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: t.Pos}, nil
	case TokReturn:
		t := p.next()
		var val Expr
		if p.cur().Kind != TokSemi {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			val = e
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ReturnStmt{Pos: t.Pos, Value: val}, nil
	case TokLBrace:
		return p.parseBlock()
	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return s, nil
	}
}

func (p *Parser) parseVarDecl() (Stmt, error) {
	kw := p.next()
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	d := &VarDecl{Pos: kw.Pos, Name: name.Text}
	if p.cur().Kind == TokLBracket {
		p.next()
		size, err := p.expect(TokNumber)
		if err != nil {
			return nil, err
		}
		if size.Num <= 0 {
			return nil, errf(size.Pos, "array size must be positive, got %d", size.Num)
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		d.IsArray = true
		d.Size = size.Num
	} else if p.cur().Kind == TokAssign {
		p.next()
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return d, nil
}

// parseSimpleStmt parses an assignment or expression statement (no
// trailing semicolon), as used in statement position and in for-headers.
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	if p.cur().Kind == TokIdent {
		// Lookahead to distinguish assignment from expression.
		switch p.toks[p.pos+1].Kind {
		case TokAssign:
			name := p.next()
			p.next() // '='
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{Pos: name.Pos, Name: name.Text, Value: val}, nil
		case TokLBracket:
			// Could be arr[i] = e or an expression using arr[i]. Parse the
			// index, then decide.
			name := p.next()
			p.next() // '['
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			if p.cur().Kind == TokAssign {
				p.next()
				val, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				return &AssignStmt{Pos: name.Pos, Name: name.Text, Index: idx, Value: val}, nil
			}
			// It was an expression after all; continue parsing with the
			// index expression as the leftmost operand.
			left := Expr(&IndexExpr{Pos: name.Pos, Name: name.Text, Index: idx})
			e, err := p.continueExpr(left, 0)
			if err != nil {
				return nil, err
			}
			return &ExprStmt{Pos: name.Pos, X: e}, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{Pos: e.StartPos(), X: e}, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	kw := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Pos: kw.Pos, Cond: cond, Then: then}
	if p.cur().Kind == TokElse {
		p.next()
		if p.cur().Kind == TokIf {
			els, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			st.Else = els
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
	}
	return st, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	kw := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Pos: kw.Pos, Cond: cond, Body: body}, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	kw := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	st := &ForStmt{Pos: kw.Pos}
	if p.cur().Kind != TokSemi {
		init, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		st.Init = init
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if p.cur().Kind != TokSemi {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if p.cur().Kind != TokRParen {
		post, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		st.Post = post
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

func (p *Parser) parseSwitch() (Stmt, error) {
	kw := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	tag, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	st := &SwitchStmt{Pos: kw.Pos, Tag: tag}
	for p.cur().Kind != TokRBrace {
		switch p.cur().Kind {
		case TokCase:
			ct := p.next()
			neg := false
			if p.cur().Kind == TokMinus {
				p.next()
				neg = true
			}
			num, err := p.expect(TokNumber)
			if err != nil {
				return nil, err
			}
			val := num.Num
			if neg {
				val = -val
			}
			if _, err := p.expect(TokColon); err != nil {
				return nil, err
			}
			body, err := p.parseCaseBody()
			if err != nil {
				return nil, err
			}
			st.Cases = append(st.Cases, SwitchCase{Pos: ct.Pos, Value: val, Body: body})
		case TokDefault:
			dt := p.next()
			if st.Default != nil {
				return nil, errf(dt.Pos, "duplicate default case")
			}
			if _, err := p.expect(TokColon); err != nil {
				return nil, err
			}
			body, err := p.parseCaseBody()
			if err != nil {
				return nil, err
			}
			if body == nil {
				body = []Stmt{}
			}
			st.Default = body
		default:
			return nil, errf(p.cur().Pos, "expected 'case' or 'default', found %s", describe(p.cur()))
		}
	}
	p.next() // '}'
	if len(st.Cases) == 0 {
		return nil, errf(kw.Pos, "switch with no cases")
	}
	return st, nil
}

func (p *Parser) parseCaseBody() ([]Stmt, error) {
	var body []Stmt
	for {
		k := p.cur().Kind
		if k == TokCase || k == TokDefault || k == TokRBrace || k == TokEOF {
			return body, nil
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		body = append(body, s)
	}
}

// Binary operator precedence, loosest first. Matches C except that all
// bitwise operators bind tighter than comparisons (avoiding C's famous
// precedence trap).
var binPrec = map[TokKind]int{
	TokOrOr:   1,
	TokAndAnd: 2,
	TokEq:     3, TokNe: 3,
	TokLt: 4, TokLe: 4, TokGt: 4, TokGe: 4,
	TokPipe:  5,
	TokCaret: 6,
	TokAmp:   7,
	TokShl:   8, TokShr: 8,
	TokPlus: 9, TokMinus: 9,
	TokStar: 10, TokSlash: 10, TokPercent: 10,
}

var tokToBinOp = map[TokKind]BinOp{
	TokOrOr: BinLogOr, TokAndAnd: BinLogAnd,
	TokEq: BinEq, TokNe: BinNe,
	TokLt: BinLt, TokLe: BinLe, TokGt: BinGt, TokGe: BinGe,
	TokPipe: BinOr, TokCaret: BinXor, TokAmp: BinAnd,
	TokShl: BinShl, TokShr: BinShr,
	TokPlus: BinAdd, TokMinus: BinSub,
	TokStar: BinMul, TokSlash: BinDiv, TokPercent: BinRem,
}

func (p *Parser) parseExpr() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	return p.continueExpr(left, 0)
}

// continueExpr is precedence climbing over an already-parsed left
// operand.
func (p *Parser) continueExpr(left Expr, minPrec int) (Expr, error) {
	for {
		prec, ok := binPrec[p.cur().Kind]
		if !ok || prec < minPrec {
			return left, nil
		}
		opTok := p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Bind tighter operators to the right operand first.
		for {
			nextPrec, ok := binPrec[p.cur().Kind]
			if !ok || nextPrec <= prec {
				break
			}
			right, err = p.continueExpr(right, nextPrec)
			if err != nil {
				return nil, err
			}
		}
		left = &BinaryExpr{Pos: opTok.Pos, Op: tokToBinOp[opTok.Kind], X: left, Y: right}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case TokMinus:
		t := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: t.Pos, Op: UnNeg, X: x}, nil
	case TokBang:
		t := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Pos: t.Pos, Op: UnNot, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.next()
		return &NumLit{Pos: t.Pos, Val: t.Num}, nil
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokIdent:
		p.next()
		switch p.cur().Kind {
		case TokLParen:
			p.next()
			call := &CallExpr{Pos: t.Pos, Name: t.Text}
			for p.cur().Kind != TokRParen {
				if len(call.Args) > 0 {
					if _, err := p.expect(TokComma); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
			}
			p.next() // ')'
			return call, nil
		case TokLBracket:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			return &IndexExpr{Pos: t.Pos, Name: t.Text, Index: idx}, nil
		}
		return &Ident{Pos: t.Pos, Name: t.Text}, nil
	}
	return nil, errf(t.Pos, "expected expression, found %s", describe(t))
}
