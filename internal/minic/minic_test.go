package minic

import (
	"strings"
	"testing"
)

func TestLexerBasics(t *testing.T) {
	toks, err := LexAll("func f(x) { return x + 0x10; } // comment")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{TokFunc, TokIdent, TokLParen, TokIdent, TokRParen,
		TokLBrace, TokReturn, TokIdent, TokPlus, TokNumber, TokSemi, TokRBrace, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(kinds))
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %v, want %v", i, toks[i].Kind, k)
		}
	}
	if toks[9].Num != 16 {
		t.Errorf("hex literal parsed as %d, want 16", toks[9].Num)
	}
}

func TestLexerOperators(t *testing.T) {
	toks, err := LexAll("== != <= >= << >> && || ! = < > & | ^ + - * / %")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokEq, TokNe, TokLe, TokGe, TokShl, TokShr, TokAndAnd,
		TokOrOr, TokBang, TokAssign, TokLt, TokGt, TokAmp, TokPipe, TokCaret,
		TokPlus, TokMinus, TokStar, TokSlash, TokPercent, TokEOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexerComments(t *testing.T) {
	toks, err := LexAll("a /* multi\nline */ b // trailing\nc")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, tok := range toks {
		if tok.Kind == TokIdent {
			names = append(names, tok.Text)
		}
	}
	if strings.Join(names, ",") != "a,b,c" {
		t.Errorf("identifiers = %v", names)
	}
	if toks[2].Pos.Line != 3 {
		t.Errorf("c should be on line 3, got %d", toks[2].Pos.Line)
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := LexAll("/* never closed"); err == nil {
		t.Error("expected error for unterminated comment")
	}
	if _, err := LexAll("a @ b"); err == nil {
		t.Error("expected error for stray character")
	}
}

func TestParseSimpleProgram(t *testing.T) {
	src := `
global counter;
global table[64];

func add(a, b) {
	return a + b;
}

func main(input[], n) {
	var i;
	var sum = 0;
	for (i = 0; i < n; i = i + 1) {
		sum = sum + input[i];
	}
	out(sum);
	return sum;
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Globals) != 2 || len(prog.Funcs) != 2 {
		t.Fatalf("got %d globals, %d funcs", len(prog.Globals), len(prog.Funcs))
	}
	if !prog.Globals[1].IsArray || prog.Globals[1].Size != 64 {
		t.Errorf("table should be an array of 64")
	}
	mainFn := prog.Funcs[1]
	if mainFn.Name != "main" || len(mainFn.Params) != 2 {
		t.Fatalf("main signature wrong: %+v", mainFn)
	}
	if !mainFn.Params[0].IsArray || mainFn.Params[1].IsArray {
		t.Error("main params should be (array, scalar)")
	}
}

func TestParsePrecedence(t *testing.T) {
	prog, err := Parse(`func f(a, b, c) { return a + b * c; }`)
	if err != nil {
		t.Fatal(err)
	}
	ret := prog.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	add, ok := ret.Value.(*BinaryExpr)
	if !ok || add.Op != BinAdd {
		t.Fatalf("top node should be +, got %T", ret.Value)
	}
	mul, ok := add.Y.(*BinaryExpr)
	if !ok || mul.Op != BinMul {
		t.Fatalf("right operand should be *, got %T", add.Y)
	}
}

func TestParseShortCircuitPrecedence(t *testing.T) {
	prog, err := Parse(`func f(a, b, c) { return a < b && b < c || c == 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	ret := prog.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	or, ok := ret.Value.(*BinaryExpr)
	if !ok || or.Op != BinLogOr {
		t.Fatalf("top node should be ||, got %T", ret.Value)
	}
	and, ok := or.X.(*BinaryExpr)
	if !ok || and.Op != BinLogAnd {
		t.Fatalf("left of || should be &&, got %T", or.X)
	}
}

func TestParseSwitch(t *testing.T) {
	src := `
func f(x) {
	switch (x) {
	case 0:
		return 10;
	case -3:
		out(x);
	default:
		return 99;
	}
	return 0;
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sw := prog.Funcs[0].Body.Stmts[0].(*SwitchStmt)
	if len(sw.Cases) != 2 {
		t.Fatalf("got %d cases", len(sw.Cases))
	}
	if sw.Cases[1].Value != -3 {
		t.Errorf("negative case value parsed as %d", sw.Cases[1].Value)
	}
	if sw.Default == nil {
		t.Error("default case missing")
	}
}

func TestParseElseIfChain(t *testing.T) {
	src := `func f(x) { if (x > 2) { return 2; } else if (x > 1) { return 1; } else { return 0; } }`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ifs := prog.Funcs[0].Body.Stmts[0].(*IfStmt)
	inner, ok := ifs.Else.(*IfStmt)
	if !ok {
		t.Fatalf("else branch should be an IfStmt, got %T", ifs.Else)
	}
	if _, ok := inner.Else.(*BlockStmt); !ok {
		t.Fatalf("inner else should be a block, got %T", inner.Else)
	}
}

func TestParseArrayElementExpressionStatement(t *testing.T) {
	// An expression statement starting with an index read must not be
	// mistaken for an assignment.
	src := `func f(a[]) { out(a[0]); a[0] + 1; a[1] = 2; }`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	stmts := prog.Funcs[0].Body.Stmts
	if _, ok := stmts[1].(*ExprStmt); !ok {
		t.Errorf("stmt 1 should be ExprStmt, got %T", stmts[1])
	}
	as, ok := stmts[2].(*AssignStmt)
	if !ok || as.Index == nil {
		t.Errorf("stmt 2 should be array assignment, got %T", stmts[2])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`func f( { }`,
		`func f() { if x { } }`,
		`func f() { var; }`,
		`global x`,
		`func f() { switch (1) { } }`,
		`func f() { switch (1) { default: default: } }`,
		`stray`,
		`func f() { return 1 }`,
		`global a[0];`,
		`func f() { var a[-1]; }`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func mustCheck(t *testing.T, src string) *Info {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return info
}

func TestCheckResolvesStorage(t *testing.T) {
	info := mustCheck(t, `
global g;
global garr[8];
func f(a, b[], c) {
	var x;
	var buf[16];
	var y = a + c + x + g;
	buf[0] = garr[1] + b[2];
	out(y);
	return y;
}
`)
	fi := info.Funcs[0]
	// Scalars: a (r0), c (r1), x (r2), y (r3).
	if fi.NumScalars != 4 {
		t.Errorf("NumScalars = %d, want 4", fi.NumScalars)
	}
	if fi.ArrayParamCount != 1 {
		t.Errorf("ArrayParamCount = %d, want 1", fi.ArrayParamCount)
	}
	if len(fi.LocalArraySizes) != 1 || fi.LocalArraySizes[0] != 16 {
		t.Errorf("LocalArraySizes = %v", fi.LocalArraySizes)
	}
	if len(info.GlobalScalars) != 1 || info.GlobalScalars[0] != "g" {
		t.Errorf("GlobalScalars = %v", info.GlobalScalars)
	}
	if len(info.GlobalArrays) != 1 || info.GlobalArrays[0].Name != "garr" {
		t.Errorf("GlobalArrays wrong")
	}
}

func TestCheckScoping(t *testing.T) {
	// Shadowing in nested scopes is allowed; each declaration gets fresh
	// storage.
	info := mustCheck(t, `
func f(x) {
	var y = 1;
	if (x) {
		var y = 2;
		out(y);
	}
	return y;
}
`)
	if info.Funcs[0].NumScalars != 3 { // x, y, inner y
		t.Errorf("NumScalars = %d, want 3", info.Funcs[0].NumScalars)
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSubstr string
	}{
		{"undefined var", `func f() { return q; }`, "undefined"},
		{"undefined fn", `func f() { return g(); }`, "undefined function"},
		{"array as scalar", `func f(a[]) { return a; }`, "used as a scalar"},
		{"scalar indexed", `func f(a) { return a[0]; }`, "not an array"},
		{"assign to array", `func f(a[]) { a = 1; }`, "without an index"},
		{"index scalar assign", `func f(a) { a[0] = 1; }`, "not an array"},
		{"arity", `func g(x) { return x; } func f() { return g(); }`, "1 argument? no"},
		{"array arg shape", `func g(x[]) { return 0; } func f(y) { return g(y); }`, "must be an array"},
		{"scalar arg shape", `func g(x) { return 0; } func f(y[]) { return g(y); }`, "used as a scalar"},
		{"break outside", `func f() { break; }`, "break outside"},
		{"continue outside", `func f() { continue; }`, "continue outside"},
		{"continue in switch", `func f(x) { switch (x) { case 1: continue; } }`, "continue outside"},
		{"dup global", `global a; global a;`, "redeclared"},
		{"dup func", `func f() { return 0; } func f() { return 0; }`, "redeclared"},
		{"func collides global", `global f; func f() { return 0; }`, "collides"},
		{"dup param", `func f(a, a) { return 0; }`, "redeclared"},
		{"dup local", `func f() { var a; var a; }`, "redeclared"},
		{"dup case", `func f(x) { switch (x) { case 1: case 1: } }`, "duplicate case"},
		{"out arity", `func f() { out(1, 2); }`, "exactly one"},
	}
	for _, c := range cases {
		prog, err := Parse(c.src)
		if err != nil {
			// A few cases may fail at parse; that still counts as rejected.
			continue
		}
		_, err = Check(prog)
		if err == nil {
			t.Errorf("%s: expected check error for %q", c.name, c.src)
			continue
		}
		if c.wantSubstr != "1 argument? no" && !strings.Contains(err.Error(), c.wantSubstr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantSubstr)
		}
	}
}

func TestCheckBreakInsideSwitchAllowed(t *testing.T) {
	mustCheck(t, `
func f(x) {
	switch (x) {
	case 1:
		break;
	default:
		out(x);
	}
	while (x) {
		switch (x) {
		case 2:
			break;
		}
		x = x - 1;
	}
	return 0;
}
`)
}

func TestCheckOutReturnsValueContext(t *testing.T) {
	mustCheck(t, `func f() { var x = out(3); return x; }`)
}

func TestCheckRecursionAllowed(t *testing.T) {
	mustCheck(t, `func fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }`)
}

func TestCheckForwardCallAllowed(t *testing.T) {
	mustCheck(t, `func f() { return g(); } func g() { return 1; }`)
}
