package minic

import "fmt"

// SymKind classifies a resolved name.
type SymKind int

// Symbol kinds.
const (
	SymScalar SymKind = iota // function-local scalar (register Index)
	SymArray                 // function-local or parameter array (frame slot Index)
	SymGlobalScalar
	SymGlobalArray
)

// Symbol is the resolution of a name occurrence. For SymScalar, Index is
// the ir register; for SymArray, the frame array slot (parameters first);
// for globals, the module-level index.
type Symbol struct {
	Kind  SymKind
	Index int
	Size  int64 // element count for arrays (0 for by-reference parameters)
}

// BuiltinOut is the Calls value marking a call to the builtin out().
const BuiltinOut = -1

// FuncInfo carries the checker's results for one function: storage
// assignment plus per-node name resolutions consumed by package lower.
type FuncInfo struct {
	Decl *FuncDecl
	// NumScalars counts scalar storage slots (registers holding named
	// variables); scalar parameters occupy the first slots in parameter
	// order.
	NumScalars int
	// ArrayParamCount is the number of array parameters (frame slots
	// 0..ArrayParamCount-1).
	ArrayParamCount int
	// LocalArraySizes lists the sizes of declared local arrays, occupying
	// frame slots ArrayParamCount, ArrayParamCount+1, ...
	LocalArraySizes []int64

	Use      map[*Ident]Symbol
	IndexUse map[*IndexExpr]Symbol
	Assign   map[*AssignStmt]Symbol
	Decls    map[*VarDecl]Symbol
	Calls    map[*CallExpr]int
}

// Info is the checked program: the AST plus symbol tables and
// resolutions.
type Info struct {
	Prog          *Program
	GlobalScalars []string
	GlobalArrays  []*GlobalDecl
	FuncIndex     map[string]int
	Funcs         []*FuncInfo
}

// Check performs semantic analysis: name resolution, shape checking
// (scalar vs array), call arity/shape checking, and break/continue
// placement. On success it returns the Info needed for lowering.
func Check(prog *Program) (*Info, error) {
	info := &Info{
		Prog:      prog,
		FuncIndex: map[string]int{},
	}
	globalScalar := map[string]int{}
	globalArray := map[string]int{}
	seen := map[string]Pos{}
	for _, g := range prog.Globals {
		if prev, dup := seen[g.Name]; dup {
			return nil, errf(g.Pos, "global %q redeclared (previous declaration at %s)", g.Name, prev)
		}
		seen[g.Name] = g.Pos
		if g.IsArray {
			globalArray[g.Name] = len(info.GlobalArrays)
			info.GlobalArrays = append(info.GlobalArrays, g)
		} else {
			globalScalar[g.Name] = len(info.GlobalScalars)
			info.GlobalScalars = append(info.GlobalScalars, g.Name)
		}
	}
	for i, f := range prog.Funcs {
		if prev, dup := info.FuncIndex[f.Name]; dup {
			return nil, errf(f.Pos, "function %q redeclared (previous declaration is function %d)", f.Name, prev)
		}
		if _, dup := seen[f.Name]; dup {
			return nil, errf(f.Pos, "function %q collides with a global of the same name", f.Name)
		}
		info.FuncIndex[f.Name] = i
	}
	for _, f := range prog.Funcs {
		fi, err := checkFunc(info, globalScalar, globalArray, f)
		if err != nil {
			return nil, err
		}
		info.Funcs = append(info.Funcs, fi)
	}
	return info, nil
}

// checker tracks per-function state during semantic analysis.
type checker struct {
	info         *Info
	globalScalar map[string]int
	globalArray  map[string]int
	fi           *FuncInfo
	scopes       []map[string]Symbol
	loopDepth    int // loops + switches for break; loops only tracked separately
	breakables   int
}

func checkFunc(info *Info, gs, ga map[string]int, f *FuncDecl) (*FuncInfo, error) {
	fi := &FuncInfo{
		Decl:     f,
		Use:      map[*Ident]Symbol{},
		IndexUse: map[*IndexExpr]Symbol{},
		Assign:   map[*AssignStmt]Symbol{},
		Decls:    map[*VarDecl]Symbol{},
		Calls:    map[*CallExpr]int{},
	}
	c := &checker{info: info, globalScalar: gs, globalArray: ga, fi: fi}
	c.push()
	seen := map[string]Pos{}
	for _, p := range f.Params {
		if prev, dup := seen[p.Name]; dup {
			return nil, errf(p.Pos, "parameter %q redeclared (previous at %s)", p.Name, prev)
		}
		seen[p.Name] = p.Pos
		if p.IsArray {
			c.declare(p.Name, Symbol{Kind: SymArray, Index: fi.ArrayParamCount})
			fi.ArrayParamCount++
		} else {
			c.declare(p.Name, Symbol{Kind: SymScalar, Index: fi.NumScalars})
			fi.NumScalars++
		}
	}
	if err := c.block(f.Body); err != nil {
		return nil, err
	}
	c.pop()
	return fi, nil
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]Symbol{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(name string, s Symbol) {
	c.scopes[len(c.scopes)-1][name] = s
}

// lookup resolves a name through local scopes, then globals. The second
// result reports whether the name was found.
func (c *checker) lookup(name string) (Symbol, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s, true
		}
	}
	if gi, ok := c.globalScalar[name]; ok {
		return Symbol{Kind: SymGlobalScalar, Index: gi}, true
	}
	if gi, ok := c.globalArray[name]; ok {
		return Symbol{Kind: SymGlobalArray, Index: gi, Size: c.info.GlobalArrays[gi].Size}, true
	}
	return Symbol{}, false
}

func (c *checker) block(b *BlockStmt) error {
	c.push()
	defer c.pop()
	for _, s := range b.Stmts {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) stmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		return c.block(st)
	case *VarDecl:
		if _, dup := c.scopes[len(c.scopes)-1][st.Name]; dup {
			return errf(st.Pos, "variable %q redeclared in this scope", st.Name)
		}
		if st.IsArray {
			sym := Symbol{Kind: SymArray, Index: c.fi.ArrayParamCount + len(c.fi.LocalArraySizes), Size: st.Size}
			c.fi.LocalArraySizes = append(c.fi.LocalArraySizes, st.Size)
			c.declare(st.Name, sym)
			c.fi.Decls[st] = sym
			return nil
		}
		if st.Init != nil {
			if err := c.scalarExpr(st.Init); err != nil {
				return err
			}
		}
		sym := Symbol{Kind: SymScalar, Index: c.fi.NumScalars}
		c.fi.NumScalars++
		c.declare(st.Name, sym)
		c.fi.Decls[st] = sym
		return nil
	case *AssignStmt:
		sym, ok := c.lookup(st.Name)
		if !ok {
			return errf(st.Pos, "undefined variable %q", st.Name)
		}
		if st.Index != nil {
			if sym.Kind != SymArray && sym.Kind != SymGlobalArray {
				return errf(st.Pos, "%q is not an array", st.Name)
			}
			if err := c.scalarExpr(st.Index); err != nil {
				return err
			}
		} else if sym.Kind != SymScalar && sym.Kind != SymGlobalScalar {
			return errf(st.Pos, "cannot assign to array %q without an index", st.Name)
		}
		if err := c.scalarExpr(st.Value); err != nil {
			return err
		}
		c.fi.Assign[st] = sym
		return nil
	case *IfStmt:
		if err := c.scalarExpr(st.Cond); err != nil {
			return err
		}
		if err := c.block(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return c.stmt(st.Else)
		}
		return nil
	case *WhileStmt:
		if err := c.scalarExpr(st.Cond); err != nil {
			return err
		}
		c.loopDepth++
		c.breakables++
		err := c.block(st.Body)
		c.loopDepth--
		c.breakables--
		return err
	case *ForStmt:
		c.push()
		defer c.pop()
		if st.Init != nil {
			if err := c.stmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if err := c.scalarExpr(st.Cond); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if err := c.stmt(st.Post); err != nil {
				return err
			}
		}
		c.loopDepth++
		c.breakables++
		err := c.block(st.Body)
		c.loopDepth--
		c.breakables--
		return err
	case *SwitchStmt:
		if err := c.scalarExpr(st.Tag); err != nil {
			return err
		}
		seen := map[int64]Pos{}
		for _, cs := range st.Cases {
			if prev, dup := seen[cs.Value]; dup {
				return errf(cs.Pos, "duplicate case %d (previous at %s)", cs.Value, prev)
			}
			seen[cs.Value] = cs.Pos
		}
		c.breakables++
		defer func() { c.breakables-- }()
		for _, cs := range st.Cases {
			c.push()
			for _, s := range cs.Body {
				if err := c.stmt(s); err != nil {
					c.pop()
					return err
				}
			}
			c.pop()
		}
		c.push()
		defer c.pop()
		for _, s := range st.Default {
			if err := c.stmt(s); err != nil {
				return err
			}
		}
		return nil
	case *BreakStmt:
		if c.breakables == 0 {
			return errf(st.Pos, "break outside loop or switch")
		}
		return nil
	case *ContinueStmt:
		if c.loopDepth == 0 {
			return errf(st.Pos, "continue outside loop")
		}
		return nil
	case *ReturnStmt:
		if st.Value != nil {
			return c.scalarExpr(st.Value)
		}
		return nil
	case *ExprStmt:
		return c.scalarExpr(st.X)
	}
	return fmt.Errorf("minic: unknown statement %T", s)
}

// scalarExpr checks an expression used in scalar (value) context.
func (c *checker) scalarExpr(e Expr) error {
	switch ex := e.(type) {
	case *NumLit:
		return nil
	case *Ident:
		sym, ok := c.lookup(ex.Name)
		if !ok {
			return errf(ex.Pos, "undefined variable %q", ex.Name)
		}
		if sym.Kind == SymArray || sym.Kind == SymGlobalArray {
			return errf(ex.Pos, "array %q used as a scalar value", ex.Name)
		}
		c.fi.Use[ex] = sym
		return nil
	case *IndexExpr:
		sym, ok := c.lookup(ex.Name)
		if !ok {
			return errf(ex.Pos, "undefined variable %q", ex.Name)
		}
		if sym.Kind != SymArray && sym.Kind != SymGlobalArray {
			return errf(ex.Pos, "%q is not an array", ex.Name)
		}
		c.fi.IndexUse[ex] = sym
		return c.scalarExpr(ex.Index)
	case *CallExpr:
		return c.call(ex)
	case *BinaryExpr:
		if err := c.scalarExpr(ex.X); err != nil {
			return err
		}
		return c.scalarExpr(ex.Y)
	case *UnaryExpr:
		return c.scalarExpr(ex.X)
	}
	return fmt.Errorf("minic: unknown expression %T", e)
}

func (c *checker) call(ex *CallExpr) error {
	if ex.Name == "out" {
		if len(ex.Args) != 1 {
			return errf(ex.Pos, "out() takes exactly one argument, got %d", len(ex.Args))
		}
		c.fi.Calls[ex] = BuiltinOut
		return c.scalarExpr(ex.Args[0])
	}
	fIdx, ok := c.info.FuncIndex[ex.Name]
	if !ok {
		return errf(ex.Pos, "call to undefined function %q", ex.Name)
	}
	callee := c.info.Prog.Funcs[fIdx]
	if len(ex.Args) != len(callee.Params) {
		return errf(ex.Pos, "call to %q with %d arguments, want %d", ex.Name, len(ex.Args), len(callee.Params))
	}
	for i, a := range ex.Args {
		if callee.Params[i].IsArray {
			id, isIdent := a.(*Ident)
			if !isIdent {
				return errf(a.StartPos(), "argument %d of %q must be an array name", i+1, ex.Name)
			}
			sym, found := c.lookup(id.Name)
			if !found {
				return errf(id.Pos, "undefined variable %q", id.Name)
			}
			if sym.Kind != SymArray && sym.Kind != SymGlobalArray {
				return errf(id.Pos, "argument %d of %q must be an array, %q is a scalar", i+1, ex.Name, id.Name)
			}
			c.fi.Use[id] = sym
			continue
		}
		if err := c.scalarExpr(a); err != nil {
			return err
		}
	}
	c.fi.Calls[ex] = fIdx
	return nil
}
