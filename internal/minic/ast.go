package minic

// Program is a parsed Mini-C compilation unit.
type Program struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// GlobalDecl declares a module-level scalar or array.
type GlobalDecl struct {
	Pos     Pos
	Name    string
	IsArray bool
	Size    int64 // array element count when IsArray
}

// Param is a function parameter; arrays are passed by reference.
type Param struct {
	Pos     Pos
	Name    string
	IsArray bool
}

// FuncDecl declares a function.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Params []Param
	Body   *BlockStmt
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmtNode() }

// Expr is implemented by all expression nodes.
type Expr interface {
	exprNode()
	// StartPos returns the position of the expression's first token.
	StartPos() Pos
}

// BlockStmt is a brace-delimited statement list.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// VarDecl declares a function-local scalar (with optional initializer) or
// array (zero-initialized).
type VarDecl struct {
	Pos     Pos
	Name    string
	IsArray bool
	Size    int64
	Init    Expr // nil unless scalar with initializer
}

// AssignStmt assigns to a scalar variable or an array element.
type AssignStmt struct {
	Pos   Pos
	Name  string
	Index Expr // nil for scalar assignment
	Value Expr
}

// IfStmt is a conditional with an optional else branch (which may itself
// be another IfStmt for else-if chains).
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt, *IfStmt, or nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body *BlockStmt
}

// ForStmt is a C-style for loop; Init and Post are optional simple
// statements (assignments or expression statements) and Cond is optional.
type ForStmt struct {
	Pos  Pos
	Init Stmt
	Cond Expr
	Post Stmt
	Body *BlockStmt
}

// SwitchCase is one case arm. Mini-C cases do not fall through.
type SwitchCase struct {
	Pos   Pos
	Value int64
	Body  []Stmt
}

// SwitchStmt is a multiway branch on an integer tag.
type SwitchStmt struct {
	Pos     Pos
	Tag     Expr
	Cases   []SwitchCase
	Default []Stmt // nil when absent
}

// BreakStmt exits the innermost enclosing loop or switch.
type BreakStmt struct{ Pos Pos }

// ContinueStmt advances the innermost enclosing loop.
type ContinueStmt struct{ Pos Pos }

// ReturnStmt returns from the function; Value may be nil (returns 0).
type ReturnStmt struct {
	Pos   Pos
	Value Expr
}

// ExprStmt evaluates an expression for its side effects (typically a
// call).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

func (*BlockStmt) stmtNode()    {}
func (*VarDecl) stmtNode()      {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*SwitchStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ReturnStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}

// NumLit is an integer literal.
type NumLit struct {
	Pos Pos
	Val int64
}

// Ident references a scalar variable (or an array when used as a call
// argument).
type Ident struct {
	Pos  Pos
	Name string
}

// IndexExpr reads an array element.
type IndexExpr struct {
	Pos   Pos
	Name  string
	Index Expr
}

// CallExpr calls a function. The builtin "out" emits a value to the
// program output stream.
type CallExpr struct {
	Pos  Pos
	Name string
	Args []Expr
}

// BinOp enumerates Mini-C binary operators, including the short-circuit
// logical ones (which lower to control flow, not data flow).
type BinOp int

// Binary operators.
const (
	BinAdd BinOp = iota
	BinSub
	BinMul
	BinDiv
	BinRem
	BinAnd
	BinOr
	BinXor
	BinShl
	BinShr
	BinEq
	BinNe
	BinLt
	BinLe
	BinGt
	BinGe
	BinLogAnd
	BinLogOr
)

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Pos  Pos
	Op   BinOp
	X, Y Expr
}

// UnOp enumerates unary operators.
type UnOp int

// Unary operators.
const (
	UnNeg UnOp = iota
	UnNot
)

// UnaryExpr applies a unary operator.
type UnaryExpr struct {
	Pos Pos
	Op  UnOp
	X   Expr
}

func (*NumLit) exprNode()     {}
func (*Ident) exprNode()      {}
func (*IndexExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}

// StartPos implementations.
func (e *NumLit) StartPos() Pos     { return e.Pos }
func (e *Ident) StartPos() Pos      { return e.Pos }
func (e *IndexExpr) StartPos() Pos  { return e.Pos }
func (e *CallExpr) StartPos() Pos   { return e.Pos }
func (e *BinaryExpr) StartPos() Pos { return e.Pos }
func (e *UnaryExpr) StartPos() Pos  { return e.Pos }
