// Package minic implements the Mini-C language front end: a small
// imperative language (integers, fixed-size arrays, functions, loops,
// switches, short-circuit booleans) that stands in for the C and Fortran
// sources of the paper's SPEC92 benchmarks. Mini-C programs compile
// (package lower) to the basic-block IR of package ir, producing the
// control-flow graphs on which branch alignment operates.
package minic

import "fmt"

// TokKind enumerates token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber

	// Keywords.
	TokFunc
	TokGlobal
	TokVar
	TokIf
	TokElse
	TokWhile
	TokFor
	TokSwitch
	TokCase
	TokDefault
	TokBreak
	TokContinue
	TokReturn

	// Punctuation and operators.
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokComma
	TokSemi
	TokColon
	TokAssign
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokAmp
	TokPipe
	TokCaret
	TokShl
	TokShr
	TokEq
	TokNe
	TokLt
	TokLe
	TokGt
	TokGe
	TokAndAnd
	TokOrOr
	TokBang
)

var tokNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokNumber: "number",
	TokFunc: "func", TokGlobal: "global", TokVar: "var", TokIf: "if",
	TokElse: "else", TokWhile: "while", TokFor: "for", TokSwitch: "switch",
	TokCase: "case", TokDefault: "default", TokBreak: "break",
	TokContinue: "continue", TokReturn: "return",
	TokLParen: "(", TokRParen: ")", TokLBrace: "{", TokRBrace: "}",
	TokLBracket: "[", TokRBracket: "]", TokComma: ",", TokSemi: ";",
	TokColon: ":", TokAssign: "=", TokPlus: "+", TokMinus: "-",
	TokStar: "*", TokSlash: "/", TokPercent: "%", TokAmp: "&",
	TokPipe: "|", TokCaret: "^", TokShl: "<<", TokShr: ">>",
	TokEq: "==", TokNe: "!=", TokLt: "<", TokLe: "<=", TokGt: ">",
	TokGe: ">=", TokAndAnd: "&&", TokOrOr: "||", TokBang: "!",
}

func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("tok(%d)", int(k))
}

var keywords = map[string]TokKind{
	"func": TokFunc, "global": TokGlobal, "var": TokVar, "if": TokIf,
	"else": TokElse, "while": TokWhile, "for": TokFor, "switch": TokSwitch,
	"case": TokCase, "default": TokDefault, "break": TokBreak,
	"continue": TokContinue, "return": TokReturn,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexed token.
type Token struct {
	Kind TokKind
	Text string
	Num  int64
	Pos  Pos
}

// Error is a front-end diagnostic carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("minic: %s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
