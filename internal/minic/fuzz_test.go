package minic

import (
	"strings"
	"testing"
)

// FuzzParse checks that the front end never panics: any input either
// parses + checks or returns a positioned error. Run with
// `go test -fuzz=FuzzParse ./internal/minic` for continuous fuzzing; the
// seed corpus below runs as part of the normal test suite.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"func main() { return 0; }",
		"global a[10]; func f(x[]) { return x[0]; }",
		"func f() { if (1 && 2 || !3) { out(4); } }",
		"func f(x) { switch (x) { case -1: break; default: } return 0; }",
		"func f() { for (;;) { break; } }",
		"func f() { var a[3]; a[0] = a[1] + a[2]; }",
		"func f() { while (1) { continue; } }",
		"fnc main() {}",
		"func main( { }",
		"func f() { var x = ((((1)))); return x; }",
		"func f() { return 0x7fffffffffffffff; }",
		"func f() { return 1 +",
		"/* unterminated",
		"func f() { out(1 2); }",
		"global g; global g;",
		"func f() { x = 1; }",
		strings.Repeat("func f() { return 0; }\n", 5),
		"func f(" + strings.Repeat("a,", 100) + "b) { return 0; }",
		"func f() {" + strings.Repeat("{", 50) + strings.Repeat("}", 50) + "}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Anything that parses must either check cleanly or error.
		_, _ = Check(prog)
	})
}

// FuzzLex checks the lexer alone on arbitrary bytes.
func FuzzLex(f *testing.F) {
	f.Add("func main() {}")
	f.Add("0x")
	f.Add("\x00\xff")
	f.Add("a /*/ b")
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := LexAll(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			t.Fatalf("lexer returned token stream without EOF")
		}
	})
}
