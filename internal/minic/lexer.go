package minic

import "strconv"

// Lexer turns Mini-C source text into tokens. It supports decimal and
// hexadecimal integers, // line comments and /* block */ comments.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return errf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: pos}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}, nil
	case isDigit(c):
		start := l.off
		if c == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
			l.advance()
			l.advance()
			for l.off < len(l.src) && isHexDigit(l.peek()) {
				l.advance()
			}
		} else {
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		text := l.src[start:l.off]
		n, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			return Token{}, errf(pos, "bad integer literal %q: %v", text, err)
		}
		return Token{Kind: TokNumber, Text: text, Num: n, Pos: pos}, nil
	}
	l.advance()
	two := func(second byte, with, without TokKind) (Token, error) {
		if l.peek() == second {
			l.advance()
			return Token{Kind: with, Pos: pos}, nil
		}
		return Token{Kind: without, Pos: pos}, nil
	}
	switch c {
	case '(':
		return Token{Kind: TokLParen, Pos: pos}, nil
	case ')':
		return Token{Kind: TokRParen, Pos: pos}, nil
	case '{':
		return Token{Kind: TokLBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: TokRBrace, Pos: pos}, nil
	case '[':
		return Token{Kind: TokLBracket, Pos: pos}, nil
	case ']':
		return Token{Kind: TokRBracket, Pos: pos}, nil
	case ',':
		return Token{Kind: TokComma, Pos: pos}, nil
	case ';':
		return Token{Kind: TokSemi, Pos: pos}, nil
	case ':':
		return Token{Kind: TokColon, Pos: pos}, nil
	case '+':
		return Token{Kind: TokPlus, Pos: pos}, nil
	case '-':
		return Token{Kind: TokMinus, Pos: pos}, nil
	case '*':
		return Token{Kind: TokStar, Pos: pos}, nil
	case '/':
		return Token{Kind: TokSlash, Pos: pos}, nil
	case '%':
		return Token{Kind: TokPercent, Pos: pos}, nil
	case '^':
		return Token{Kind: TokCaret, Pos: pos}, nil
	case '=':
		return two('=', TokEq, TokAssign)
	case '!':
		return two('=', TokNe, TokBang)
	case '<':
		if l.peek() == '<' {
			l.advance()
			return Token{Kind: TokShl, Pos: pos}, nil
		}
		return two('=', TokLe, TokLt)
	case '>':
		if l.peek() == '>' {
			l.advance()
			return Token{Kind: TokShr, Pos: pos}, nil
		}
		return two('=', TokGe, TokGt)
	case '&':
		return two('&', TokAndAnd, TokAmp)
	case '|':
		return two('|', TokOrOr, TokPipe)
	}
	return Token{}, errf(pos, "unexpected character %q", string(c))
}

// LexAll tokenizes the whole input (including the trailing EOF token).
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
