// Package minic_test extends the front-end fuzzing with whole-pipeline
// invariants (it lives in the external test package so it can import the
// lowerer, the interpreter and the checker without an import cycle).
package minic_test

import (
	"strings"
	"testing"

	"branchalign/internal/check"
	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/lower"
	"branchalign/internal/minic"
)

// FuzzCompileInvariants pushes every fuzzed program that survives the
// front end through the rest of the pipeline and asserts the checker's
// invariants instead of just "no panic":
//
//   - a program that parses and checks must lower to a module that passes
//     ir.Verify and the check.Module audit without structural errors;
//   - a bounded interpreter run of that module that completes normally
//     must leave a profile satisfying flow conservation (check.Flow).
//
// A run that aborts (step budget, division by zero, out-of-bounds access)
// legitimately strands control mid-function, so conservation is only
// asserted for clean completions.
func FuzzCompileInvariants(f *testing.F) {
	seeds := []string{
		"func main() { return 0; }",
		"func main(n) { var i = 0; var s = 0; while (i < n) { s = s + i; i = i + 1; } return s; }",
		"func main(x[], n) { var s = 0; var i = 0; while (i < n) { s = s + x[i]; i = i + 1; } return s; }",
		"func g(x) { if (x <= 1) { return 1; } return x * g(x - 1); } func main(n) { return g(n % 10); }",
		"func main(n) { switch (n % 3) { case 0: return 7; case 1: return 8; default: return 9; } return 0; }",
		"global acc; func bump(x) { acc = acc + x; return acc; } func main(n) { var i = 0; for (i = 0; i < n; i = i + 1) { bump(i); } return acc; }",
		"func main(n) { return n / (n - n); }",     // traps: division by zero
		"func main(n) { while (1) { } return 0; }", // hits the step budget
		"func main(n) { var a[4]; return a[n]; }",  // may trap: bounds
		"func f() { return 0; }",                   // no main: entry defaults to function 0
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := minic.Parse(src)
		if err != nil {
			return
		}
		info, err := minic.Check(prog)
		if err != nil {
			return
		}
		mod, err := lower.Program(info)
		if err != nil {
			// The lowerer rejects a few checked-but-unlowerable shapes
			// (e.g. register pressure limits); rejection must be a
			// positioned error, never a malformed module.
			if strings.TrimSpace(err.Error()) == "" {
				t.Fatalf("lower rejected program with an empty error")
			}
			return
		}
		if r := check.Module(mod); !r.OK() {
			t.Fatalf("lowered module breaks structural invariants:\n%s\nsource:\n%s", r.String(), src)
		}
		if len(mod.Funcs) == 0 {
			return
		}
		inputs, ok := entryInputs(mod)
		if !ok {
			return
		}
		prof := interp.NewProfile(mod)
		if _, err := interp.Run(mod, inputs, interp.Options{Profile: prof, MaxSteps: 1 << 16, MaxDepth: 64}); err != nil {
			return // aborted runs legally violate conservation
		}
		if r := check.Flow(mod, prof); !r.OK() {
			t.Fatalf("completed run violates flow conservation:\n%s\nsource:\n%s", r.String(), src)
		}
	})
}

// entryInputs builds arguments matching the entry function's signature.
func entryInputs(mod *ir.Module) ([]interp.Input, bool) {
	entry := mod.Funcs[mod.EntryFunc]
	inputs := make([]interp.Input, 0, len(entry.Params))
	for _, p := range entry.Params {
		if p == ir.ParamArray {
			inputs = append(inputs, interp.ArrayInput([]int64{3, 1, 4, 1, 5}))
		} else {
			inputs = append(inputs, interp.ScalarInput(5))
		}
	}
	return inputs, true
}
