// Package testutil provides shared helpers for the test suites of the
// alignment packages: compiling Mini-C snippets to IR and collecting
// profiles in one call.
package testutil

import (
	"fmt"
	"math/rand"
	"strings"

	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/lower"
	"branchalign/internal/minic"
)

// Compile builds an IR module from Mini-C source.
func Compile(src string) (*ir.Module, error) {
	prog, err := minic.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	info, err := minic.Check(prog)
	if err != nil {
		return nil, fmt.Errorf("check: %w", err)
	}
	mod, err := lower.Program(info)
	if err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}
	return mod, nil
}

// Profile runs mod on inputs and returns the collected profile and run
// result.
func Profile(mod *ir.Module, inputs []interp.Input) (*interp.Profile, interp.Result, error) {
	prof := interp.NewProfile(mod)
	res, err := interp.Run(mod, inputs, interp.Options{Profile: prof})
	return prof, res, err
}

// CompileAndProfile combines Compile and Profile.
func CompileAndProfile(src string, inputs []interp.Input) (*ir.Module, *interp.Profile, interp.Result, error) {
	mod, err := Compile(src)
	if err != nil {
		return nil, nil, interp.Result{}, err
	}
	prof, res, err := Profile(mod, inputs)
	return mod, prof, res, err
}

// BranchySource returns a Mini-C program exercising every terminator
// kind (conditional, switch, unconditional chains, returns, calls) with
// input-dependent behavior, for use as a test workload. The entry takes
// (input[], n).
const BranchySource = `
global histogram[8];
global total;

func classify(x) {
	if (x < 0) { return 0 - 1; }
	switch (x % 5) {
	case 0: return 10;
	case 1: return 11;
	case 2:
		if (x > 50) { return 22; }
		return 12;
	case 3: return 13;
	default: return 14;
	}
	return 99;
}

func tally(x) {
	var k = x % 8;
	if (k < 0) { k = k + 8; }
	histogram[k] = histogram[k] + 1;
	total = total + 1;
	return histogram[k];
}

func main(input[], n) {
	var i;
	var acc = 0;
	for (i = 0; i < n; i = i + 1) {
		var v = input[i];
		acc = acc + classify(v);
		if (v % 2 == 0 && v > 10) {
			acc = acc + tally(v);
		} else if (v % 3 == 0 || v < 0) {
			acc = acc - 1;
		}
		while (v > 100) {
			v = v / 2;
			acc = acc + 1;
		}
	}
	out(acc);
	out(total);
	return acc;
}
`

// ConflictSource returns a module whose original function order places a
// large cold function between two hot ones, so that under a small
// direct-mapped instruction cache the hot caller's loop lines alias with
// the first hot callee — the scenario interprocedural procedure ordering
// (layout.OrderFunctions) fixes. Entry is main(n).
func ConflictSource() string {
	var sb strings.Builder
	sb.WriteString("func hotA(x) { return x + 1; }\n")
	sb.WriteString("func coldPad(x) {\n var y = x;\n")
	for i := 0; i < 520; i++ {
		sb.WriteString(" y = y + 1;\n")
	}
	sb.WriteString(" return y;\n}\n")
	sb.WriteString(`
func hotB(x) { return x * 3 + 1; }
func main(n) {
	var i;
	var s = 0;
	for (i = 0; i < n; i = i + 1) {
		s = hotA(s);
		s = hotB(s);
		s = s & 65535;
	}
	if (n < 0) { s = coldPad(s); }
	return s;
}
`)
	return sb.String()
}

// BranchyInput produces a deterministic pseudo-random input vector for
// BranchySource.
func BranchyInput(n int, seed int64) []interp.Input {
	rng := rand.New(rand.NewSource(seed))
	data := make([]int64, n)
	for i := range data {
		data[i] = rng.Int63n(400) - 50
	}
	return []interp.Input{interp.ArrayInput(data), interp.ScalarInput(int64(n))}
}
