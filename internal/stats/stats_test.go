package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestGeoMeanBelowMean(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := float64(a)+1, float64(b)+1
		return GeoMean([]float64{x, y}) <= Mean([]float64{x, y})+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatioAndPercent(t *testing.T) {
	if got := Ratio(1, 2, -1); got != 0.5 {
		t.Errorf("Ratio = %v", got)
	}
	if got := Ratio(1, 0, -1); got != -1 {
		t.Errorf("Ratio fallback = %v", got)
	}
	if got := PercentRemoved(0.64); math.Abs(got-36) > 1e-9 {
		t.Errorf("PercentRemoved = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("bench", "value")
	tb.Row("com.in", "11.8M")
	tb.Rowf("%s|%d", "dod.re", 42)
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[0], "bench") {
		t.Errorf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator missing: %q", lines[1])
	}
	if !strings.Contains(lines[3], "dod.re") || !strings.Contains(lines[3], "42") {
		t.Errorf("Rowf row wrong: %q", lines[3])
	}
	// Columns aligned: both data rows start the second column at the same
	// offset.
	if strings.Index(lines[2], "11.8M") != strings.Index(lines[0], "value") {
		t.Errorf("columns misaligned:\n%s", s)
	}
}

func TestFormatCount(t *testing.T) {
	cases := map[int64]string{
		11_800_000: "11.8M",
		1_234_567:  "1.23M",
		46_500:     "46.5K",
		999:        "999",
	}
	for in, want := range cases {
		if got := FormatCount(in); got != want {
			t.Errorf("FormatCount(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("a", "b", "c")
	tb.Row("x")                // short row: padded to the header's width
	tb.Row("1", "2", "3", "4") // long row: widens the table
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), s)
	}
	// Every rendered row spans the same number of columns.
	w := len(lines[3])
	for _, l := range []string{lines[0], lines[2]} {
		if len(strings.TrimRight(l, " ")) > w {
			t.Errorf("row wider than widest row:\n%s", s)
		}
	}
	if !strings.Contains(lines[3], "4") {
		t.Errorf("extra cell dropped:\n%s", s)
	}
}

func TestTableHeaderOnly(t *testing.T) {
	s := NewTable("only", "header").String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 2 || !strings.Contains(lines[1], "---") {
		t.Fatalf("header-only table wrong:\n%s", s)
	}
	// Separator exactly spans the header.
	if len(lines[1]) != len(strings.TrimRight(lines[0], " ")) {
		t.Errorf("separator width %d != header width %d", len(lines[1]), len(lines[0]))
	}
}

func TestFormatCountBoundaries(t *testing.T) {
	cases := map[int64]string{
		0:          "0",
		9_999:      "9999",
		10_000:     "10.0K",
		999_999:    "1000.0K",
		1_000_000:  "1.00M",
		9_999_999:  "10.00M",
		10_000_000: "10.0M",
	}
	for in, want := range cases {
		if got := FormatCount(in); got != want {
			t.Errorf("FormatCount(%d) = %q, want %q", in, got, want)
		}
	}
}
