// Package stats provides the small numeric and formatting helpers used
// by the experiment harness: means, normalization, and fixed-width text
// tables in the style of the paper's tables and figures.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (0 for empty input; panics on
// non-positive values, which indicate a bug in normalization upstream).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %g", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Ratio returns num/den, or fallback when den is zero.
func Ratio(num, den int64, fallback float64) float64 {
	if den == 0 {
		return fallback
	}
	return float64(num) / float64(den)
}

// PercentRemoved expresses "removed x% of the penalty" for a normalized
// value (0.64 -> 36).
func PercentRemoved(normalized float64) float64 {
	return (1 - normalized) * 100
}

// Table renders rows of cells as an aligned text table. The first row is
// the header; a separator line is drawn beneath it.
type Table struct {
	rows [][]string
}

// NewTable starts a table with the given header.
func NewTable(header ...string) *Table {
	t := &Table{}
	t.rows = append(t.rows, header)
	return t
}

// Row appends a data row; cells may be fewer than the header's (padded).
func (t *Table) Row(cells ...string) {
	t.rows = append(t.rows, cells)
}

// Rowf appends a row of formatted cells.
func (t *Table) Rowf(format string, args ...any) {
	t.Row(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

// String renders the table.
func (t *Table) String() string {
	cols := 0
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", width[i], c)
		}
		sb.WriteString("\n")
	}
	writeRow(t.rows[0])
	total := 0
	for i, w := range width {
		total += w
		if i > 0 {
			total += 2
		}
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteString("\n")
	for _, r := range t.rows[1:] {
		writeRow(r)
	}
	return sb.String()
}

// FormatCount renders large counts with M/K suffixes, like the paper's
// "11.8M" style.
func FormatCount(n int64) string {
	switch {
	case n >= 10_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1_000_000:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.1fK", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}
