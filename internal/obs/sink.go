package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Sink receives completed telemetry events. The Trace serializes Emit
// calls, so implementations need no locking of their own for use under
// a Trace (MemorySink locks anyway so tests may emit directly).
type Sink interface {
	Emit(Event)
}

// MemorySink collects events in memory — the test sink, also used by
// `balign report` to render tables from an in-process run.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Sink.
func (m *MemorySink) Emit(e Event) {
	m.mu.Lock()
	m.events = append(m.events, e)
	m.mu.Unlock()
}

// Events returns a copy of the collected events in emission order.
func (m *MemorySink) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Event, len(m.events))
	copy(out, m.events)
	return out
}

// Len returns the number of collected events.
func (m *MemorySink) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.events)
}

// Find returns the collected events matching type and name (either may
// be "" for any).
func (m *MemorySink) Find(typ, name string) []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Event
	for _, e := range m.events {
		if (typ == "" || e.Type == typ) && (name == "" || e.Name == name) {
			out = append(out, e)
		}
	}
	return out
}

// Reset discards all collected events.
func (m *MemorySink) Reset() {
	m.mu.Lock()
	m.events = nil
	m.mu.Unlock()
}

// NDJSONSink streams events as newline-delimited JSON, one event per
// line — the interchange format `balign --trace` writes and
// `balign report -in` / ReadEvents consume. Writes are buffered; call
// Close (Trace.Close does) to flush. The first write error sticks and
// subsequent events are dropped; check Err after closing.
type NDJSONSink struct {
	bw  *bufio.Writer
	enc *json.Encoder
	n   int64
	err error
}

// NewNDJSONSink returns a sink writing to w. The caller retains
// ownership of w (e.g. closing the underlying file).
func NewNDJSONSink(w io.Writer) *NDJSONSink {
	bw := bufio.NewWriter(w)
	return &NDJSONSink{bw: bw, enc: json.NewEncoder(bw)}
}

// Emit implements Sink.
func (s *NDJSONSink) Emit(e Event) {
	if s.err != nil {
		return
	}
	if err := s.enc.Encode(e); err != nil {
		s.err = err
		return
	}
	s.n++
}

// Count returns the number of events successfully encoded.
func (s *NDJSONSink) Count() int64 { return s.n }

// Err returns the first write error, if any.
func (s *NDJSONSink) Err() error { return s.err }

// Close flushes buffered output and returns the first error seen.
func (s *NDJSONSink) Close() error {
	if err := s.bw.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}
