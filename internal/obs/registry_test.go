package obs

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestRegistryGolden pins the exposition byte for byte: family order,
// series order, label escaping, histogram le/+Inf/sum/count layout.
func TestRegistryGolden(t *testing.T) {
	r := NewRegistry()
	reqs := r.CounterVec("http_requests_total", "Requests served.", "endpoint", "code")
	reqs.With("/v1/align", "200").Add(3)
	reqs.With("/v1/align", "429").Inc()
	reqs.With("other", "404").Inc()
	r.Gauge("inflight", "In-flight requests.").Set(2)
	r.GaugeFunc("cache_entries", "Cached results.", func() float64 { return 5 })
	h := r.Histogram("latency_seconds", "Request latency.", -2, 2)
	for _, v := range []float64{0.2, 0.3, 1, 4, 100} {
		h.Observe(v)
	}
	// A label value exercising every escape: backslash, quote, newline.
	r.CounterVec("odd_labels_total", "Escaping fodder; help with \\ and\nnewline.", "k").
		With("a\"b\\c\nd").Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP cache_entries Cached results.
# TYPE cache_entries gauge
cache_entries 5
# HELP http_requests_total Requests served.
# TYPE http_requests_total counter
http_requests_total{endpoint="/v1/align",code="200"} 3
http_requests_total{endpoint="/v1/align",code="429"} 1
http_requests_total{endpoint="other",code="404"} 1
# HELP inflight In-flight requests.
# TYPE inflight gauge
inflight 2
# HELP latency_seconds Request latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.25"} 1
latency_seconds_bucket{le="0.5"} 2
latency_seconds_bucket{le="1"} 3
latency_seconds_bucket{le="2"} 3
latency_seconds_bucket{le="4"} 4
latency_seconds_bucket{le="+Inf"} 5
latency_seconds_sum 105.5
latency_seconds_count 5
# HELP odd_labels_total Escaping fodder; help with \\ and\nnewline.
# TYPE odd_labels_total counter
odd_labels_total{k="a\"b\\c\nd"} 1
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHistogramInvariants checks the le-schedule invariants on every
// rendered histogram series: buckets cumulative and monotone, +Inf
// equal to _count, _sum the exact sum of observations.
func TestHistogramInvariants(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("solve_seconds", "", -4, 4, "mode")
	var sums = map[string]float64{}
	var counts = map[string]int64{}
	for i, mode := range []string{"measured", "static", "measured"} {
		h := hv.With(mode)
		for j := 0; j < 10+i; j++ {
			v := float64(j) * 1.7 // 0 (below min bound) .. beyond max bound 16
			h.Observe(v)
			sums[mode] += v
			counts[mode]++
		}
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	// Parse the series back per mode.
	type hist struct {
		buckets []int64
		inf     int64
		sum     float64
		count   int64
	}
	got := map[string]*hist{}
	at := func(mode string) *hist {
		h, ok := got[mode]
		if !ok {
			h = &hist{}
			got[mode] = h
		}
		return h
	}
	for _, line := range strings.Split(b.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "solve_seconds_bucket{mode="):
			mode := "measured"
			if strings.Contains(line, `"static"`) {
				mode = "static"
			}
			n, _ := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if strings.Contains(line, `le="+Inf"`) {
				at(mode).inf = n
			} else {
				at(mode).buckets = append(at(mode).buckets, n)
			}
		case strings.HasPrefix(line, "solve_seconds_sum{"):
			mode := "measured"
			if strings.Contains(line, `"static"`) {
				mode = "static"
			}
			at(mode).sum, _ = strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		case strings.HasPrefix(line, "solve_seconds_count{"):
			mode := "measured"
			if strings.Contains(line, `"static"`) {
				mode = "static"
			}
			at(mode).count, _ = strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		}
	}
	for mode, h := range got {
		if len(h.buckets) != 9 { // exponents -4..4
			t.Fatalf("%s: %d bounded buckets, want 9", mode, len(h.buckets))
		}
		for i := 1; i < len(h.buckets); i++ {
			if h.buckets[i] < h.buckets[i-1] {
				t.Errorf("%s: bucket counts not monotone: %v", mode, h.buckets)
			}
		}
		if h.buckets[len(h.buckets)-1] > h.inf {
			t.Errorf("%s: top bounded bucket %d exceeds +Inf %d", mode, h.buckets[len(h.buckets)-1], h.inf)
		}
		if h.inf != counts[mode] || h.count != counts[mode] {
			t.Errorf("%s: +Inf %d / count %d, want %d", mode, h.inf, h.count, counts[mode])
		}
		if math.Abs(h.sum-sums[mode]) > 1e-9 {
			t.Errorf("%s: sum %v, want %v", mode, h.sum, sums[mode])
		}
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d modes, want 2", len(got))
	}
}

// TestBucketIndex pins the pow2 bucket mapping at its edges: exact
// powers of two land in their own bucket (le is inclusive), everything
// at or below the lowest bound lands in bucket 0, and values above the
// top bound fall through to +Inf only.
func TestBucketIndex(t *testing.T) {
	cases := []struct {
		v      float64
		minExp int
		maxExp int
		idx    int
		ok     bool
	}{
		{0, -2, 2, 0, true},
		{-5, -2, 2, 0, true},
		{0.25, -2, 2, 0, true},
		{0.26, -2, 2, 1, true},
		{0.5, -2, 2, 1, true},
		{1, -2, 2, 2, true},
		{1.01, -2, 2, 3, true},
		{2, -2, 2, 3, true},
		{4, -2, 2, 4, true},
		{4.01, -2, 2, 0, false},
		{1024, -2, 2, 0, false},
	}
	for _, c := range cases {
		idx, ok := bucketIndex(c.v, c.minExp, c.maxExp)
		if idx != c.idx || ok != c.ok {
			t.Errorf("bucketIndex(%v, %d, %d) = (%d, %v), want (%d, %v)",
				c.v, c.minExp, c.maxExp, idx, ok, c.idx, c.ok)
		}
	}
}

// TestRegistryConcurrent hammers every update path while collections
// run — the -race workout for the registry's locking discipline.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	cv := r.CounterVec("cv_total", "", "k")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", -4, 4)
	hv := r.HistogramVec("hv_seconds", "", -4, 4, "k")
	r.GaugeFunc("gf", "", func() float64 { return float64(c.Value()) })

	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := strconv.Itoa(w % 3)
			series := cv.With(label)
			for i := 0; i < iters; i++ {
				c.Inc()
				series.Inc()
				cv.With(label).Add(1) // re-resolution race
				g.Add(1)
				h.Observe(float64(i % 40))
				hv.With(label).Observe(float64(i % 40))
				if i%100 == 0 {
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*iters {
		t.Errorf("counter %d, want %d", got, workers*iters)
	}
	if got := r.Sum("cv_total", nil); got != 2*workers*iters {
		t.Errorf("cv sum %v, want %d", got, 2*workers*iters)
	}
	if got := g.Value(); got != workers*iters {
		t.Errorf("gauge %v, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Errorf("histogram count %d, want %d", got, workers*iters)
	}
}

// TestRegistryNilIsFree pins the disabled path: every operation on the
// nil registry (and the nil handles it returns) is a no-op with zero
// heap allocations — the same contract as the nil *Trace.
func TestRegistryNilIsFree(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry claims enabled")
	}
	allocs := testing.AllocsPerRun(100, func() {
		r.Counter("c", "").Inc()
		r.CounterVec("cv", "", "a", "b").With("x", "y").Add(3)
		r.Gauge("g", "").Set(1)
		r.GaugeVec("gv", "", "a").With("x").Add(1)
		r.GaugeFunc("gf", "", func() float64 { return 1 })
		r.Histogram("h", "", -2, 2).Observe(0.5)
		r.HistogramVec("hv", "", -2, 2, "a").With("x").Observe(2)
		if r.Sum("c", nil) != 0 {
			t.Error("nil Sum non-zero")
		}
		if err := r.WritePrometheus(nil); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Errorf("nil registry path allocates %v per op bundle, want 0", allocs)
	}
}

// TestRegistryReRegister pins idempotent registration and loud
// signature conflicts.
func TestRegistryReRegister(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	a.Add(2)
	b := r.Counter("x_total", "help")
	if b.Value() != 2 {
		t.Fatalf("re-registration did not return the existing series: %d", b.Value())
	}
	for name, fn := range map[string]func(){
		"kind":    func() { r.Gauge("x_total", "") },
		"labels":  func() { r.CounterVec("x_total", "", "k") },
		"buckets": func() { r.Histogram("h_seconds", "", -2, 2); r.Histogram("h_seconds", "", -3, 2) },
		"invalid": func() { r.Counter("bad name", "") },
		"le":      func() { r.HistogramVec("h2_seconds", "", -2, 2, "le") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s conflict did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestSumMatching pins the label-constrained read-back the stats
// surfaces are built on.
func TestSumMatching(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "", "ep", "code")
	v.With("/a", "200").Add(3)
	v.With("/a", "500").Add(1)
	v.With("/b", "200").Add(10)
	if got := r.Sum("req_total", nil); got != 14 {
		t.Errorf("total %v, want 14", got)
	}
	if got := r.Sum("req_total", map[string]string{"ep": "/a"}); got != 4 {
		t.Errorf("/a %v, want 4", got)
	}
	if got := r.Sum("req_total", map[string]string{"ep": "/a", "code": "200"}); got != 3 {
		t.Errorf("/a 200 %v, want 3", got)
	}
	if got := r.Sum("req_total", map[string]string{"nope": "x"}); got != 0 {
		t.Errorf("unknown label %v, want 0", got)
	}
	if got := r.Sum("missing_total", nil); got != 0 {
		t.Errorf("unknown family %v, want 0", got)
	}
}
