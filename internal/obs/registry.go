package obs

// registry.go is the process-wide metrics plane: where obs.Trace
// observes one solve from the inside, a Registry aggregates the whole
// process — every request, every cache decision, every pool queue — and
// exposes the totals in Prometheus text format for scraping.
//
// The model mirrors Prometheus' own, hand-rolled on the stdlib:
//
//   - A metric family has a name, a help string, a kind (counter,
//     gauge, histogram) and a fixed set of label keys declared at
//     registration. Registration is idempotent for an identical
//     signature and panics on a conflicting one — a name collision is a
//     programming error, not a runtime condition.
//   - A family with labels is a vector: With(values...) resolves one
//     labeled series, which callers cache and then update lock-free
//     (counters and histogram buckets are atomics; gauges are
//     atomically-stored float bits).
//   - Histograms reuse the tracer's power-of-two bucketing, but over a
//     fixed exponent range declared at registration so every series in
//     a family exposes the same `le` schedule (Prometheus requires
//     aggregatable buckets). Observations above the top bound count
//     only toward `+Inf`, `_sum` and `_count`.
//   - WritePrometheus renders the whole registry deterministically:
//     families in name order, series in label-value order, `le` last —
//     so the exposition is golden-testable byte for byte.
//
// Zero cost when disabled: the nil *Registry is the disabled registry.
// Every registration method on it returns a nil handle, and every
// update method on a nil handle returns immediately without
// allocating, so instrumented code needs no build-time gating (the same
// contract as the nil *Trace).
//
// Cardinality is the caller's contract: label values must come from
// small closed sets (route patterns, outcome enums — never user input,
// request IDs or function names), so a registry's memory is bounded by
// the code that registers into it.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and renders them as Prometheus text.
// All methods are safe for concurrent use; the nil *Registry is the
// disabled registry (see the package comment above).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

type familyKind uint8

const (
	kindCounter familyKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k familyKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric family: fixed label keys, a set of labeled
// series. The family mutex guards the series map only; series values
// are atomics updated without it.
type family struct {
	name   string
	help   string
	kind   familyKind
	labels []string
	// histogram families: bucket upper bounds are 2^e for
	// e in [minExp, maxExp].
	minExp, maxExp int
	// gauge-func families: value read at collection time.
	fn func() float64

	mu     sync.Mutex
	series map[string]*series
	order  []string // insertion order of keys; sorted at exposition
}

// series is one labeled instance of a family. Which fields are live
// depends on the kind: counters use n; gauges use bits (float64 bits);
// histograms use n (count), bits (sum bits, CAS-accumulated) and
// buckets (non-cumulative per-bound counts).
type series struct {
	values  []string
	n       atomic.Int64
	bits    atomic.Uint64
	buckets []atomic.Int64
}

// register returns the named family, creating it on first use. A
// re-registration with an identical signature returns the existing
// family; a conflicting one panics.
func (r *Registry) register(name, help string, kind familyKind, labels []string, minExp, maxExp int) *family {
	if name == "" || !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validMetricName(l) || l == "le" {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) || f.minExp != minExp || f.maxExp != maxExp {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different signature", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels: append([]string(nil), labels...),
		minExp: minExp, maxExp: maxExp,
		series: map[string]*series{},
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// validMetricName enforces the Prometheus identifier grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return len(s) > 0
}

// with resolves (creating on demand) the series for the given label
// values.
func (f *family) with(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{values: append([]string(nil), values...)}
		if f.kind == kindHistogram {
			s.buckets = make([]atomic.Int64, f.maxExp-f.minExp+1)
		}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// ---------------------------------------------------------------------
// Counters

// Counter is a monotonically increasing integer metric. The nil
// *Counter is inert.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (which must be >= 0 to keep the counter monotone;
// negative deltas are ignored).
func (c *Counter) Add(delta int64) {
	if c == nil || delta < 0 {
		return
	}
	c.s.n.Add(delta)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.s.n.Load()
}

// Counter registers (or looks up) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.register(name, help, kindCounter, nil, 0, 0)
	return &Counter{s: f.with(nil)}
}

// CounterVec is a counter family with labels. The nil *CounterVec is
// inert: With returns the nil *Counter without allocating.
type CounterVec struct{ f *family }

// With resolves the series for the given label values (one per label
// key, in registration order). Callers on hot paths should resolve once
// and cache the handle.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return &Counter{s: v.f.with(values)}
}

// CounterVec registers (or looks up) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.register(name, help, kindCounter, labels, 0, 0)}
}

// ---------------------------------------------------------------------
// Gauges

// Gauge is a settable instantaneous value. The nil *Gauge is inert.
type Gauge struct{ s *series }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.s.bits.Store(math.Float64bits(v))
}

// Add adds delta (CAS loop; safe from any goroutine).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.s.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.s.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.s.bits.Load())
}

// Gauge registers (or looks up) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.register(name, help, kindGauge, nil, 0, 0)
	return &Gauge{s: f.with(nil)}
}

// GaugeVec is a gauge family with labels; nil is inert.
type GaugeVec struct{ f *family }

// With resolves the series for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return &Gauge{s: v.f.with(values)}
}

// GaugeVec registers (or looks up) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.register(name, help, kindGauge, labels, 0, 0)}
}

// GaugeFunc registers a gauge whose value is read by calling fn at
// collection time — live views like pool queue depth or cache size.
// fn must be safe to call from any goroutine and may take its own
// locks, but must never call back into registry registration.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.register(name, help, kindGaugeFunc, nil, 0, 0)
	f.fn = fn
}

// ---------------------------------------------------------------------
// Histograms

// Histogram is a power-of-two-bucketed sample distribution. The nil
// *Histogram is inert.
type Histogram struct {
	s              *series
	minExp, maxExp int
}

// Observe adds one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if i, ok := bucketIndex(v, h.minExp, h.maxExp); ok {
		h.s.buckets[i].Add(1)
	}
	h.s.n.Add(1)
	for {
		old := h.s.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.s.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of samples observed (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.s.n.Load()
}

// bucketIndex maps v to the index of the smallest bound 2^e >= v with
// e in [minExp, maxExp]; ok is false when v exceeds every bound (the
// sample still counts toward +Inf via _count).
func bucketIndex(v float64, minExp, maxExp int) (int, bool) {
	if v <= math.Ldexp(1, minExp) {
		return 0, true
	}
	if v > math.Ldexp(1, maxExp) {
		return 0, false
	}
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	e := exp
	if frac == 0.5 {
		e = exp - 1 // v is an exact power of two: 2^(exp-1)
	}
	return e - minExp, true
}

// Histogram registers (or looks up) an unlabeled histogram with bucket
// upper bounds 2^minExp .. 2^maxExp (plus +Inf). For latencies in
// seconds, minExp -14 .. maxExp 6 spans ~61µs to 64s.
func (r *Registry) Histogram(name, help string, minExp, maxExp int) *Histogram {
	if r == nil {
		return nil
	}
	if minExp > maxExp {
		panic(fmt.Sprintf("obs: histogram %q has minExp %d > maxExp %d", name, minExp, maxExp))
	}
	f := r.register(name, help, kindHistogram, nil, minExp, maxExp)
	return &Histogram{s: f.with(nil), minExp: minExp, maxExp: maxExp}
}

// HistogramVec is a histogram family with labels; nil is inert.
type HistogramVec struct{ f *family }

// With resolves the series for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return &Histogram{s: v.f.with(values), minExp: v.f.minExp, maxExp: v.f.maxExp}
}

// HistogramVec registers (or looks up) a labeled histogram family; see
// Histogram for the bucket schedule.
func (r *Registry) HistogramVec(name, help string, minExp, maxExp int, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if minExp > maxExp {
		panic(fmt.Sprintf("obs: histogram %q has minExp %d > maxExp %d", name, minExp, maxExp))
	}
	return &HistogramVec{f: r.register(name, help, kindHistogram, labels, minExp, maxExp)}
}

// ---------------------------------------------------------------------
// Reading back

// Sum returns the sum over all series of the named family whose labels
// match every key=value pair in match (nil matches everything):
// counter counts, gauge values (gauge funcs call fn), histogram sample
// counts. Unknown families sum to 0. This is the read side /v1/stats
// and the parity tests use, so JSON surfaces can never drift from the
// exposition — both read the same cells.
func (r *Registry) Sum(name string, match map[string]string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	f, ok := r.families[name]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	if f.kind == kindGaugeFunc {
		if len(match) == 0 && f.fn != nil {
			return f.fn()
		}
		return 0
	}
	idx := map[string]int{}
	for i, l := range f.labels {
		idx[l] = i
	}
	for k := range match {
		if _, ok := idx[k]; !ok {
			return 0
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var sum float64
	for _, s := range f.series {
		matched := true
		for k, want := range match {
			if s.values[idx[k]] != want {
				matched = false
				break
			}
		}
		if !matched {
			continue
		}
		switch f.kind {
		case kindCounter, kindHistogram:
			sum += float64(s.n.Load())
		case kindGauge:
			sum += math.Float64frombits(s.bits.Load())
		}
	}
	return sum
}

// ---------------------------------------------------------------------
// Prometheus text exposition

// WritePrometheus renders every family in Prometheus text format
// (version 0.0.4): families in name order, series in label-value order,
// histogram buckets cumulative with a trailing +Inf, `le` as the last
// label. The output is deterministic for a deterministic set of
// updates, so it golden-tests byte for byte.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make([]*family, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		f.write(&b)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(b *strings.Builder) {
	if f.help != "" {
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteByte('\n')
	}
	b.WriteString("# TYPE ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(f.kind.String())
	b.WriteByte('\n')

	if f.kind == kindGaugeFunc {
		var v float64
		if f.fn != nil {
			v = f.fn()
		}
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(formatFloat(v))
		b.WriteByte('\n')
		return
	}

	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	sort.Strings(keys)
	ordered := make([]*series, 0, len(keys))
	for _, k := range keys {
		ordered = append(ordered, f.series[k])
	}
	f.mu.Unlock()

	for _, s := range ordered {
		switch f.kind {
		case kindCounter:
			b.WriteString(f.name)
			writeLabels(b, f.labels, s.values, "", 0)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(s.n.Load(), 10))
			b.WriteByte('\n')
		case kindGauge:
			b.WriteString(f.name)
			writeLabels(b, f.labels, s.values, "", 0)
			b.WriteByte(' ')
			b.WriteString(formatFloat(math.Float64frombits(s.bits.Load())))
			b.WriteByte('\n')
		case kindHistogram:
			// Load count first, then buckets: a concurrent Observe
			// increments the bucket before the count, so cumulative
			// bucket tallies never exceed what +Inf (== _count) reports
			// — the le-monotonicity invariant holds even mid-update.
			count := s.n.Load()
			var cum int64
			for i := range s.buckets {
				n := s.buckets[i].Load()
				cum += n
				if cum > count {
					cum = count
				}
				b.WriteString(f.name)
				b.WriteString("_bucket")
				writeLabels(b, f.labels, s.values, "le", math.Ldexp(1, f.minExp+i))
				b.WriteByte(' ')
				b.WriteString(strconv.FormatInt(cum, 10))
				b.WriteByte('\n')
			}
			b.WriteString(f.name)
			b.WriteString("_bucket")
			writeLabels(b, f.labels, s.values, "le", math.Inf(1))
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(count, 10))
			b.WriteByte('\n')
			b.WriteString(f.name)
			b.WriteString("_sum")
			writeLabels(b, f.labels, s.values, "", 0)
			b.WriteByte(' ')
			b.WriteString(formatFloat(math.Float64frombits(s.bits.Load())))
			b.WriteByte('\n')
			b.WriteString(f.name)
			b.WriteString("_count")
			writeLabels(b, f.labels, s.values, "", 0)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(count, 10))
			b.WriteByte('\n')
		}
	}
}

// writeLabels renders {k="v",...}, appending le as the final label when
// leKey is non-empty. No labels at all renders nothing.
func writeLabels(b *strings.Builder, keys, values []string, leKey string, le float64) {
	if len(keys) == 0 && leKey == "" {
		return
	}
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if leKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(leKey)
		b.WriteString(`="`)
		if math.IsInf(le, 1) {
			b.WriteString("+Inf")
		} else {
			b.WriteString(formatFloat(le))
		}
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// formatFloat renders a sample value the way Prometheus clients do:
// shortest round-trippable decimal.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the text format: backslash,
// double quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a help string: backslash and newline only (quotes
// are legal in help text).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
