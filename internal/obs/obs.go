// Package obs is the solver telemetry layer: a zero-dependency tracer
// and metrics registry that every stage of the alignment pipeline
// (profiling, DTSP construction, tour heuristics, iterated 3-opt,
// Held-Karp subgradient ascent, patching, pipeline simulation) reports
// into, so that solve quality and speed are observable per run instead
// of only as final numbers.
//
// The model is small and explicit:
//
//   - A Trace owns a Sink and a metrics registry. Spans, counters,
//     gauges and histograms hang off it. Events are emitted to the sink
//     as they complete; registry aggregates are flushed by Close.
//   - A Span is a timed, named region with typed attributes and a
//     parent, forming a hierarchy (balign > align > align.func >
//     tsp.solve > tsp.run). Ending a span emits one Event.
//   - A Series is an (x, y) sequence attached to a span — tour cost per
//     kick iteration, Held-Karp bound per subgradient iteration —
//     emitted as a single event when the span ends.
//   - Sinks are pluggable: NDJSONSink streams newline-delimited JSON,
//     MemorySink collects events for tests and in-process reporting.
//
// Zero cost when disabled: a nil *Trace is the disabled tracer, and
// every method on *Trace, *Span and *Series is nil-receiver safe and
// returns immediately. Solver hot paths hold a *Span (nil when
// tracing is off) and pay one predictable branch per telemetry call;
// the repository-level bench_obs_test.go benchmarks pin that the 3-opt
// inner loop shows no measurable overhead with tracing disabled.
//
// Concurrency: a Trace and its registry are safe for concurrent use
// (the parallel per-function solver loops in package align report into
// one Trace). Creating child spans of a shared parent is safe from
// multiple goroutines; an individual Span's SetAttrs/Series/End must be
// used from one goroutine, which matches the one-span-per-function
// structure of the pipeline.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one typed key/value attribute. Values are restricted by the
// constructors to strings, int64s, float64s and bools so every event
// round-trips through JSON. The payload fields are concrete rather than
// an interface: constructing attributes boxes nothing, so call sites on
// a disabled (nil) span stay allocation-free — values convert to `any`
// only when an enabled span stores them.
type Attr struct {
	Key  string
	kind attrKind
	str  string
	i    int64
	f    float64
	b    bool
}

type attrKind uint8

const (
	attrString attrKind = iota
	attrInt
	attrFloat
	attrBool
)

// value boxes the attribute's payload for storage in an event.
func (a Attr) value() any {
	switch a.kind {
	case attrInt:
		return a.i
	case attrFloat:
		return a.f
	case attrBool:
		return a.b
	default:
		return a.str
	}
}

// String returns a string attribute.
func String(k, v string) Attr { return Attr{Key: k, kind: attrString, str: v} }

// Int returns an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, kind: attrInt, i: v} }

// Float returns a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, kind: attrFloat, f: v} }

// Bool returns a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, kind: attrBool, b: v} }

// Trace is the root telemetry object. The nil *Trace is the disabled
// tracer: every method no-ops, which is the zero-cost-when-disabled
// contract the solver hot paths rely on.
type Trace struct {
	sink  Sink
	start time.Time
	now   func() time.Time

	ids atomic.Int64

	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*histogram
	closed   bool
}

// New returns a Trace emitting into sink. A nil sink returns the nil
// (disabled) trace, so callers can unconditionally write
// obs.New(maybeNilSink) and thread the result everywhere.
func New(sink Sink) *Trace {
	if sink == nil {
		return nil
	}
	t := &Trace{
		sink:     sink,
		now:      time.Now,
		counters: map[string]int64{},
		gauges:   map[string]float64{},
		hists:    map[string]*histogram{},
	}
	t.start = t.now()
	return t
}

// Enabled reports whether the trace records anything.
func (t *Trace) Enabled() bool { return t != nil }

func (t *Trace) emit(e Event) {
	t.mu.Lock()
	if !t.closed {
		t.sink.Emit(e)
	}
	t.mu.Unlock()
}

// Start begins a root span.
func (t *Trace) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(name, 0, attrs)
}

func (t *Trace) newSpan(name string, parent int64, attrs []Attr) *Span {
	s := &Span{t: t, id: t.ids.Add(1), parent: parent, name: name, start: t.now()}
	s.attrs = attrsMap(nil, attrs)
	return s
}

// Count adds delta to the named counter. Concurrent adds from any
// goroutine merge into one total, flushed as a single "counter" event
// by Close.
func (t *Trace) Count(name string, delta int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.counters[name] += delta
	t.mu.Unlock()
}

// Gauge records the latest value of a named quantity.
func (t *Trace) Gauge(name string, v float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.gauges[name] = v
	t.mu.Unlock()
}

// Observe adds one sample to the named histogram (power-of-two
// buckets), e.g. per-row sparse-matrix exception counts.
func (t *Trace) Observe(name string, v float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	h := t.hists[name]
	if h == nil {
		h = &histogram{buckets: map[int64]int64{}}
		t.hists[name] = h
	}
	h.observe(v)
	t.mu.Unlock()
}

// ObserveBatch merges a pre-bucketed power-of-two histogram into the
// named trace histogram: counts[i] samples with value in (2^(i-1), 2^i]
// (counts[0]: the value 1), totalling sum. Hot loops that cannot afford
// a mutexed Observe per sample tally local buckets and flush once per
// region — the 3-opt/Or-opt splice-length histogram flushes per
// local-search run. Bucket counts and the mean merge exactly (the mean
// via sum); min and max are tracked at bucket resolution, the tightest
// bounds the pre-bucketed samples admit. An all-zero batch records
// nothing.
func (t *Trace) ObserveBatch(name string, counts []int64, sum float64) {
	if t == nil {
		return
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return
	}
	t.mu.Lock()
	h := t.hists[name]
	if h == nil {
		h = &histogram{buckets: map[int64]int64{}}
		t.hists[name] = h
	}
	h.observeBatch(counts, sum)
	t.mu.Unlock()
}

// Close flushes the metrics registry (counters, gauges, histograms) as
// events — in sorted name order, so output is deterministic — and
// closes the sink if it implements io.Closer. Close is idempotent; a
// nil trace closes successfully.
func (t *Trace) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	for _, name := range sortedKeys(t.counters) {
		t.sink.Emit(Event{Type: "counter", Name: name, Count: t.counters[name]})
	}
	for _, name := range sortedKeys(t.gauges) {
		t.sink.Emit(Event{Type: "gauge", Name: name, Value: t.gauges[name]})
	}
	for _, name := range sortedKeys(t.hists) {
		t.sink.Emit(t.hists[name].event(name))
	}
	t.closed = true
	t.mu.Unlock()
	if c, ok := t.sink.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Span is a timed region of the pipeline. The nil *Span is valid and
// inert; solver code threads *Span unconditionally and pays only a nil
// check when tracing is disabled.
type Span struct {
	t      *Trace
	id     int64
	parent int64
	name   string
	start  time.Time
	attrs  map[string]any
	series []*Series
	ended  bool
}

// Child starts a sub-span. Safe to call concurrently on a shared
// parent (the parallel per-function solver loops do).
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.t.newSpan(name, s.id, attrs)
}

// SetAttrs adds or overwrites attributes on the span.
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = attrsMap(s.attrs, attrs)
}

// Count adds to a trace-level counter (see Trace.Count).
func (s *Span) Count(name string, delta int64) {
	if s == nil {
		return
	}
	s.t.Count(name, delta)
}

// Observe adds a sample to a trace-level histogram (see Trace.Observe).
func (s *Span) Observe(name string, v float64) {
	if s == nil {
		return
	}
	s.t.Observe(name, v)
}

// ObserveBatch merges pre-bucketed samples into a trace-level histogram
// (see Trace.ObserveBatch).
func (s *Span) ObserveBatch(name string, counts []int64, sum float64) {
	if s == nil {
		return
	}
	s.t.ObserveBatch(name, counts, sum)
}

// Series opens a named (x, y) series attached to this span, emitted as
// one event when the span ends. On a nil span it returns the nil
// (inert) series.
func (s *Span) Series(name string) *Series {
	if s == nil {
		return nil
	}
	se := &Series{name: name}
	s.series = append(s.series, se)
	return se
}

// End closes the span, merging any final attributes, and emits its
// event (plus one event per non-empty series). End is idempotent.
func (s *Span) End(attrs ...Attr) {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.attrs = attrsMap(s.attrs, attrs)
	end := s.t.now()
	for _, se := range s.series {
		if len(se.points) == 0 {
			continue
		}
		s.t.emit(Event{Type: "series", Name: se.name, Parent: s.id, Points: se.points})
	}
	s.t.emit(Event{
		Type:    "span",
		Name:    s.name,
		ID:      s.id,
		Parent:  s.parent,
		StartUS: s.start.Sub(s.t.start).Microseconds(),
		DurUS:   end.Sub(s.start).Microseconds(),
		Attrs:   s.attrs,
	})
}

// Series accumulates (x, y) points — convergence trajectories like
// tour cost per kick iteration or Held-Karp bound per subgradient
// iteration. The nil *Series discards points.
type Series struct {
	name   string
	points [][2]float64
}

// Add appends one point.
func (se *Series) Add(x int64, y float64) {
	if se == nil {
		return
	}
	se.points = append(se.points, [2]float64{float64(x), y})
}

// Len returns the number of points recorded so far (0 on nil).
func (se *Series) Len() int {
	if se == nil {
		return 0
	}
	return len(se.points)
}

func attrsMap(m map[string]any, attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return m
	}
	if m == nil {
		m = make(map[string]any, len(attrs))
	}
	for _, a := range attrs {
		m[a.Key] = a.value()
	}
	return m
}

// histogram is a power-of-two-bucketed sample distribution.
type histogram struct {
	n        int64
	sum      float64
	min, max float64
	buckets  map[int64]int64 // upper bound (inclusive) -> count
}

func (h *histogram) observe(v float64) {
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	h.buckets[bucketLe(v)]++
}

// observeBatch merges pre-bucketed counts (counts[i] samples in
// (2^(i-1), 2^i], counts[0]: the value 1) totalling sum. Min and max
// tighten to the narrowest bounds the buckets admit: the smallest value
// the lowest occupied bucket can hold and the upper edge of the highest.
func (h *histogram) observeBatch(counts []int64, sum float64) {
	for i, c := range counts {
		if c == 0 {
			continue
		}
		le := int64(1) << i
		lo := float64(le)
		if i > 0 {
			lo = float64(le>>1 + 1)
		}
		if h.n == 0 || lo < h.min {
			h.min = lo
		}
		if h.n == 0 || float64(le) > h.max {
			h.max = float64(le)
		}
		h.n += c
		h.buckets[le] += c
	}
	h.sum += sum
}

// bucketLe returns the histogram bucket for v: the smallest power of
// two >= v (minimum 1; every v <= 1, including negatives, lands in the
// first bucket).
func bucketLe(v float64) int64 {
	le := int64(1)
	for float64(le) < v && le < 1<<62 {
		le <<= 1
	}
	return le
}

func (h *histogram) event(name string) Event {
	e := Event{
		Type:  "hist",
		Name:  name,
		Count: h.n,
		Attrs: map[string]any{"min": h.min, "max": h.max, "mean": h.sum / float64(h.n)},
	}
	for _, le := range sortedInt64Keys(h.buckets) {
		e.Buckets = append(e.Buckets, Bucket{Le: le, N: h.buckets[le]})
	}
	return e
}

func sortedInt64Keys(m map[int64]int64) []int64 {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
