package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Event is one telemetry record. Which fields are meaningful depends on
// Type:
//
//	"span"     ID, Parent, StartUS, DurUS, Attrs
//	"series"   Parent (owning span), Points
//	"counter"  Count
//	"gauge"    Value
//	"hist"     Count, Buckets, Attrs (min/max/mean)
//
// Events marshal to single-line JSON objects; a trace file is
// newline-delimited JSON (NDJSON), one event per line.
type Event struct {
	Type    string         `json:"type"`
	Name    string         `json:"name"`
	ID      int64          `json:"id,omitempty"`
	Parent  int64          `json:"parent,omitempty"`
	StartUS int64          `json:"start_us,omitempty"`
	DurUS   int64          `json:"dur_us,omitempty"`
	Count   int64          `json:"count,omitempty"`
	Value   float64        `json:"value,omitempty"`
	Attrs   map[string]any `json:"attrs,omitempty"`
	Points  [][2]float64   `json:"points,omitempty"`
	Buckets []Bucket       `json:"buckets,omitempty"`
}

// Bucket is one histogram bucket: N samples with value <= Le (and
// greater than the previous bucket's bound).
type Bucket struct {
	Le int64 `json:"le"`
	N  int64 `json:"n"`
}

// Str returns the named attribute as a string ("" when absent or not a
// string).
func (e Event) Str(key string) string {
	s, _ := e.Attrs[key].(string)
	return s
}

// Int returns the named attribute as an int64. JSON decoding turns
// numbers into float64, so both live and round-tripped events work.
func (e Event) Int(key string) int64 {
	switch v := e.Attrs[key].(type) {
	case int64:
		return v
	case int:
		return int64(v)
	case float64:
		return int64(v)
	}
	return 0
}

// Float returns the named attribute as a float64.
func (e Event) Float(key string) float64 {
	switch v := e.Attrs[key].(type) {
	case float64:
		return v
	case int64:
		return float64(v)
	case int:
		return float64(v)
	}
	return 0
}

// Bool returns the named attribute as a bool.
func (e Event) Bool(key string) bool {
	b, _ := e.Attrs[key].(bool)
	return b
}

// Has reports whether the named attribute is present.
func (e Event) Has(key string) bool {
	_, ok := e.Attrs[key]
	return ok
}

// ReadEvents decodes an NDJSON event stream (the output of NDJSONSink),
// tolerating trailing whitespace. It returns the events read so far
// alongside any decode error.
func ReadEvents(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var events []Event
	for {
		var e Event
		err := dec.Decode(&e)
		if errors.Is(err, io.EOF) {
			return events, nil
		}
		if err != nil {
			return events, fmt.Errorf("obs: reading event %d: %w", len(events)+1, err)
		}
		events = append(events, e)
	}
}
