package obs

import (
	"bytes"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newTestTrace returns a trace over a fresh MemorySink with a
// deterministic clock advancing 1ms per reading.
func newTestTrace() (*Trace, *MemorySink) {
	sink := &MemorySink{}
	tr := New(sink)
	var tick atomic.Int64 // spans may be created concurrently
	base := time.Unix(1000, 0)
	tr.now = func() time.Time {
		return base.Add(time.Duration(tick.Add(1)) * time.Millisecond)
	}
	tr.start = base
	return tr, sink
}

func TestSpanNesting(t *testing.T) {
	tr, sink := newTestTrace()
	root := tr.Start("root", String("k", "v"))
	child := root.Child("child")
	grand := child.Child("grand")
	grand.End(Int("depth", 3))
	child.End()
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	spans := sink.Find("span", "")
	if len(spans) != 3 {
		t.Fatalf("got %d span events, want 3", len(spans))
	}
	byName := map[string]Event{}
	for _, e := range spans {
		byName[e.Name] = e
	}
	if byName["root"].Parent != 0 {
		t.Errorf("root parent = %d, want 0", byName["root"].Parent)
	}
	if byName["child"].Parent != byName["root"].ID {
		t.Errorf("child parent = %d, want root id %d", byName["child"].Parent, byName["root"].ID)
	}
	if byName["grand"].Parent != byName["child"].ID {
		t.Errorf("grand parent = %d, want child id %d", byName["grand"].Parent, byName["child"].ID)
	}
	if got := byName["grand"].Int("depth"); got != 3 {
		t.Errorf("grand depth attr = %d, want 3", got)
	}
	if byName["root"].Str("k") != "v" {
		t.Errorf("root attr k = %q, want v", byName["root"].Str("k"))
	}
	// Children end before parents, so spans arrive innermost-first.
	if spans[0].Name != "grand" || spans[2].Name != "root" {
		t.Errorf("span emission order wrong: %v %v %v", spans[0].Name, spans[1].Name, spans[2].Name)
	}
	if byName["root"].DurUS <= 0 {
		t.Errorf("root duration = %d, want > 0", byName["root"].DurUS)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr, sink := newTestTrace()
	sp := tr.Start("once")
	sp.End()
	sp.End(Int("late", 1))
	if got := len(sink.Find("span", "once")); got != 1 {
		t.Fatalf("double End emitted %d events, want 1", got)
	}
}

func TestCounterMerge(t *testing.T) {
	tr, sink := newTestTrace()
	sp := tr.Start("work")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp.Count("moves", 2)
				tr.Count("moves", 1)
			}
		}()
	}
	wg.Wait()
	sp.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	counters := sink.Find("counter", "moves")
	if len(counters) != 1 {
		t.Fatalf("got %d counter events, want 1 merged", len(counters))
	}
	if counters[0].Count != 8*100*3 {
		t.Errorf("merged counter = %d, want %d", counters[0].Count, 8*100*3)
	}
}

func TestGaugeAndHistogram(t *testing.T) {
	tr, sink := newTestTrace()
	tr.Gauge("alpha", 2)
	tr.Gauge("alpha", 0.5) // last write wins
	for _, v := range []float64{0, 1, 2, 3, 5, 100} {
		tr.Observe("row_exceptions", v)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	g := sink.Find("gauge", "alpha")
	if len(g) != 1 || g[0].Value != 0.5 {
		t.Fatalf("gauge = %+v, want one event with value 0.5", g)
	}
	h := sink.Find("hist", "row_exceptions")
	if len(h) != 1 {
		t.Fatalf("got %d hist events, want 1", len(h))
	}
	e := h[0]
	if e.Count != 6 || e.Float("min") != 0 || e.Float("max") != 100 {
		t.Errorf("hist summary wrong: count=%d min=%v max=%v", e.Count, e.Float("min"), e.Float("max"))
	}
	// 0 and 1 -> le 1; 2 -> le 2; 3 -> le 4; 5 -> le 8; 100 -> le 128.
	want := []Bucket{{1, 2}, {2, 1}, {4, 1}, {8, 1}, {128, 1}}
	if len(e.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", e.Buckets, want)
	}
	for i, b := range want {
		if e.Buckets[i] != b {
			t.Errorf("bucket %d = %+v, want %+v", i, e.Buckets[i], b)
		}
	}
}

func TestSeries(t *testing.T) {
	tr, sink := newTestTrace()
	sp := tr.Start("run")
	se := sp.Series("tour_cost")
	se.Add(0, 50)
	se.Add(3, 42)
	empty := sp.Series("never_filled")
	_ = empty
	sp.End()
	events := sink.Find("series", "")
	if len(events) != 1 {
		t.Fatalf("got %d series events, want 1 (empty series suppressed)", len(events))
	}
	e := events[0]
	if e.Name != "tour_cost" || e.Parent == 0 {
		t.Errorf("series event wrong: %+v", e)
	}
	if len(e.Points) != 2 || e.Points[1] != [2]float64{3, 42} {
		t.Errorf("points = %v", e.Points)
	}
	if se.Len() != 2 {
		t.Errorf("Len = %d, want 2", se.Len())
	}
}

// TestDisabledNoOp pins the nil-receiver contract: the disabled tracer
// accepts the full API without allocating or panicking.
func TestDisabledNoOp(t *testing.T) {
	var tr *Trace
	if tr.Enabled() {
		t.Error("nil trace reports enabled")
	}
	if New(nil) != nil {
		t.Error("New(nil) should return the disabled tracer")
	}
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Start("root", Int("n", 1))
		child := sp.Child("child")
		child.Count("c", 1)
		child.Observe("h", 2)
		child.ObserveBatch("hb", []int64{1, 2, 3}, 11)
		se := child.Series("s")
		se.Add(1, 2)
		if se.Len() != 0 {
			t.Error("nil series has points")
		}
		child.SetAttrs(Bool("b", true))
		child.End()
		sp.End()
		tr.Count("c", 1)
		tr.Gauge("g", 1)
		tr.Observe("h", 1)
		tr.ObserveBatch("hb", []int64{4}, 4)
		if err := tr.Close(); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Errorf("disabled tracer allocates %v per run, want 0", allocs)
	}
}

func TestEmitAfterCloseDropped(t *testing.T) {
	tr, sink := newTestTrace()
	sp := tr.Start("late")
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	sp.End()
	if got := sink.Len(); got != 0 {
		t.Errorf("events after close = %d, want 0", got)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewNDJSONSink(&buf)
	tr := New(sink)
	sp := tr.Start("solve", String("func", "main"), Int("cities", 17), Float("gap", 0.25), Bool("exact", false))
	se := sp.Series("hk_bound")
	se.Add(0, 10.5)
	se.Add(1, 12)
	sp.Count("kicks", 7)
	sp.End(Int("cost", 42))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.Err() != nil {
		t.Fatal(sink.Err())
	}
	if sink.Count() != 3 {
		t.Fatalf("encoded %d events, want 3", sink.Count())
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Fatalf("NDJSON has %d lines, want 3:\n%s", lines, buf.String())
	}

	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("decoded %d events, want 3", len(events))
	}
	var span, series, counter *Event
	for i := range events {
		switch events[i].Type {
		case "span":
			span = &events[i]
		case "series":
			series = &events[i]
		case "counter":
			counter = &events[i]
		}
	}
	if span == nil || series == nil || counter == nil {
		t.Fatalf("missing event kinds in %+v", events)
	}
	if span.Str("func") != "main" || span.Int("cities") != 17 || span.Int("cost") != 42 {
		t.Errorf("span attrs lost: %+v", span.Attrs)
	}
	if span.Float("gap") != 0.25 || span.Bool("exact") {
		t.Errorf("typed attrs lost: %+v", span.Attrs)
	}
	if !span.Has("cities") || span.Has("absent") {
		t.Error("Has wrong")
	}
	if series.Parent != span.ID || len(series.Points) != 2 || series.Points[0] != [2]float64{0, 10.5} {
		t.Errorf("series lost: %+v", series)
	}
	if counter.Name != "kicks" || counter.Count != 7 {
		t.Errorf("counter lost: %+v", counter)
	}
}

func TestReadEventsBadInput(t *testing.T) {
	events, err := ReadEvents(strings.NewReader("{\"type\":\"span\",\"name\":\"a\"}\nnot json\n"))
	if err == nil {
		t.Fatal("expected decode error")
	}
	if len(events) != 1 {
		t.Errorf("got %d events before error, want 1", len(events))
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr, sink := newTestTrace()
	root := tr.Start("align")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := root.Child("align.func", Int("fn", int64(i)))
			se := sp.Series("tour_cost")
			se.Add(0, float64(i))
			sp.End()
		}(i)
	}
	wg.Wait()
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.Find("span", "align.func")); got != 16 {
		t.Errorf("got %d align.func spans, want 16", got)
	}
	seen := map[int64]bool{}
	for _, e := range sink.Find("span", "") {
		if seen[e.ID] {
			t.Errorf("duplicate span id %d", e.ID)
		}
		seen[e.ID] = true
	}
}

// TestObserveBatch pins the pre-bucketed merge: bucket counts land on
// the matching power-of-two upper bounds, repeated batches and plain
// Observe calls merge into one histogram, the mean stays exact via the
// carried sum, min/max tighten to bucket resolution, and an all-zero
// batch records nothing.
func TestObserveBatch(t *testing.T) {
	tr, sink := newTestTrace()
	// Buckets: 2 samples of value 1, 3 in (1,2], 1 in (2,4]; sum chosen
	// as 1+1+2+2+2+3 = 11.
	tr.ObserveBatch("splice", []int64{2, 3, 1}, 11)
	// Merge a second batch and an individual sample.
	tr.ObserveBatch("splice", []int64{0, 0, 0, 2}, 16) // 2 samples in (4,8], e.g. 8+8
	tr.Observe("splice", 2)
	tr.ObserveBatch("empty", []int64{0, 0, 0}, 0) // must not create a histogram
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	hists := sink.Find("hist", "")
	if len(hists) != 1 {
		t.Fatalf("got %d hist events, want 1 (all-zero batch must record nothing)", len(hists))
	}
	e := hists[0]
	if e.Name != "splice" || e.Count != 9 {
		t.Fatalf("hist %q count %d, want splice/9", e.Name, e.Count)
	}
	if mean := e.Float("mean"); mean != (11.0+16+2)/9 {
		t.Errorf("mean = %v, want %v", mean, (11.0+16+2)/9)
	}
	if e.Float("min") != 1 || e.Float("max") != 8 {
		t.Errorf("min/max = %v/%v, want 1/8", e.Float("min"), e.Float("max"))
	}
	want := map[int64]int64{1: 2, 2: 4, 4: 1, 8: 2}
	if len(e.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %v", e.Buckets, want)
	}
	for _, b := range e.Buckets {
		if want[b.Le] != b.N {
			t.Errorf("bucket le=%d n=%d, want %d", b.Le, b.N, want[b.Le])
		}
	}
}
