// Telemetry overhead benchmarks: the obs tracer's contract is that a
// nil span costs nothing on the solver hot path, so instrumented code
// never needs a separate uninstrumented build. Each family runs the
// same work with tracing off (nil span) and on (in-memory sink):
//
//	go test -run '^$' -bench Telemetry -benchmem .
//
// The "off" numbers should match the pre-instrumentation solver within
// benchmark noise, and "off" must not allocate on behalf of telemetry.
package branchalign

import (
	"math/rand"
	"testing"

	"branchalign/internal/align"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
	"branchalign/internal/obs"
	"branchalign/internal/tsp"
)

// solveInstance builds the largest bundled function's DTSP instance —
// the 3-Opt inner loop dominates its solve time, which is exactly the
// path the disabled tracer must not slow down.
func solveInstance(b *testing.B) (*tsp.SparseMatrix, tsp.SolveOptions) {
	b.Helper()
	f, fp := largestBundledFunc(b)
	m := machine.Alpha21164()
	mat := align.BuildSparseMatrix(f, fp, layout.Predictions(f, fp), m)
	return mat, tsp.PaperSolveOptions(1)
}

func BenchmarkSolveTelemetry(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		mat, opt := solveInstance(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tsp.Solve(mat, opt)
		}
	})
	b.Run("on", func(b *testing.B) {
		mat, opt := solveInstance(b)
		tr := obs.New(&obs.MemorySink{})
		root := tr.Start("bench")
		opt.Obs = root
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tsp.Solve(mat, opt)
		}
		b.StopTimer()
		root.End()
		tr.Close()
	})
}

// BenchmarkHeldKarpTelemetry measures the subgradient driver, whose
// per-iteration span/series calls are the densest telemetry call sites
// outside the 3-Opt loop.
func BenchmarkHeldKarpTelemetry(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	n := 60
	m := tsp.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.Set(i, j, tsp.Cost(1+rng.Intn(1000)))
			}
		}
	}
	opt := tsp.HeldKarpOptions{Iterations: 100}
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tsp.HeldKarpDirected(m, opt)
		}
	})
	b.Run("on", func(b *testing.B) {
		tr := obs.New(&obs.MemorySink{})
		root := tr.Start("bench")
		o := opt
		o.Obs = root
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tsp.HeldKarpDirected(m, o)
		}
		b.StopTimer()
		root.End()
		tr.Close()
	})
}

// BenchmarkDisabledSpanOps pins the cost of the nil fast path itself:
// every obs entry point on a disabled tracer should be a couple of
// nil checks, with zero allocations.
func BenchmarkDisabledSpanOps(b *testing.B) {
	var tr *obs.Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("x", obs.Int("i", int64(i)))
		child := sp.Child("y")
		child.Count("c", 1)
		child.Series("s").Add(int64(i), 1.5)
		child.End()
		sp.End(obs.Float("v", 2.5))
	}
}

// BenchmarkRegistryTelemetry measures the metrics-plane update path the
// way the request path hits it: handles resolved once at construction,
// then counter increments, a labeled histogram observation, and a gauge
// swing per iteration. "off" runs the same call sequence against a nil
// registry — the disabled metrics plane must cost only nil checks and
// zero allocations, the same contract as the nil span.
func BenchmarkRegistryTelemetry(b *testing.B) {
	run := func(b *testing.B, reg *obs.Registry) {
		c := reg.Counter("bench_requests_total", "")
		cv := reg.CounterVec("bench_codes_total", "", "code")
		ok := cv.With("200")
		g := reg.Gauge("bench_inflight", "")
		hv := reg.HistogramVec("bench_latency_seconds", "", -14, 6, "mode")
		h := hv.With("measured")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Add(1)
			c.Inc()
			ok.Inc()
			h.Observe(float64(i%1000) * 1e-4)
			g.Add(-1)
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) { run(b, obs.NewRegistry()) })
}

// BenchmarkRegistryWith measures the label-resolution slow path (map
// lookup under lock per call) against the resolved-handle fast path, to
// keep the "resolve once, hold the handle" guidance in DESIGN.md honest.
func BenchmarkRegistryWith(b *testing.B) {
	reg := obs.NewRegistry()
	cv := reg.CounterVec("bench_lookup_total", "", "endpoint", "code")
	b.Run("resolve-each", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cv.With("/v1/align", "200").Inc()
		}
	})
	b.Run("held-handle", func(b *testing.B) {
		h := cv.With("/v1/align", "200")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Inc()
		}
	})
}
