// Telemetry overhead benchmarks: the obs tracer's contract is that a
// nil span costs nothing on the solver hot path, so instrumented code
// never needs a separate uninstrumented build. Each family runs the
// same work with tracing off (nil span) and on (in-memory sink):
//
//	go test -run '^$' -bench Telemetry -benchmem .
//
// The "off" numbers should match the pre-instrumentation solver within
// benchmark noise, and "off" must not allocate on behalf of telemetry.
package branchalign

import (
	"math/rand"
	"testing"

	"branchalign/internal/align"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
	"branchalign/internal/obs"
	"branchalign/internal/tsp"
)

// solveInstance builds the largest bundled function's DTSP instance —
// the 3-Opt inner loop dominates its solve time, which is exactly the
// path the disabled tracer must not slow down.
func solveInstance(b *testing.B) (*tsp.SparseMatrix, tsp.SolveOptions) {
	b.Helper()
	f, fp := largestBundledFunc(b)
	m := machine.Alpha21164()
	mat := align.BuildSparseMatrix(f, fp, layout.Predictions(f, fp), m)
	return mat, tsp.PaperSolveOptions(1)
}

func BenchmarkSolveTelemetry(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		mat, opt := solveInstance(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tsp.Solve(mat, opt)
		}
	})
	b.Run("on", func(b *testing.B) {
		mat, opt := solveInstance(b)
		tr := obs.New(&obs.MemorySink{})
		root := tr.Start("bench")
		opt.Obs = root
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tsp.Solve(mat, opt)
		}
		b.StopTimer()
		root.End()
		tr.Close()
	})
}

// BenchmarkHeldKarpTelemetry measures the subgradient driver, whose
// per-iteration span/series calls are the densest telemetry call sites
// outside the 3-Opt loop.
func BenchmarkHeldKarpTelemetry(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	n := 60
	m := tsp.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.Set(i, j, tsp.Cost(1+rng.Intn(1000)))
			}
		}
	}
	opt := tsp.HeldKarpOptions{Iterations: 100}
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tsp.HeldKarpDirected(m, opt)
		}
	})
	b.Run("on", func(b *testing.B) {
		tr := obs.New(&obs.MemorySink{})
		root := tr.Start("bench")
		o := opt
		o.Obs = root
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tsp.HeldKarpDirected(m, o)
		}
		b.StopTimer()
		root.End()
		tr.Close()
	})
}

// BenchmarkDisabledSpanOps pins the cost of the nil fast path itself:
// every obs entry point on a disabled tracer should be a couple of
// nil checks, with zero allocations.
func BenchmarkDisabledSpanOps(b *testing.B) {
	var tr *obs.Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("x", obs.Int("i", int64(i)))
		child := sp.Child("y")
		child.Count("c", 1)
		child.Series("s").Add(int64(i), 1.5)
		child.End()
		sp.End(obs.Float("v", 2.5))
	}
}
