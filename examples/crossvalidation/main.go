// Crossvalidation: reproduce the paper's Section 4.2 methodology on one
// benchmark: train the layout on one input, evaluate it on another, and
// watch the benefit dilute without changing the ranking of the
// algorithms. Also demonstrates why a too-short training run (xli.ne)
// makes a poor trainer.
//
//	go run ./examples/crossvalidation
package main

import (
	"context"
	"fmt"
	"log"

	"branchalign/internal/align"
	"branchalign/internal/bench"
	"branchalign/internal/interp"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
)

func main() {
	b, err := bench.ByName("xli")
	if err != nil {
		log.Fatal(err)
	}
	mod, err := b.Compile()
	if err != nil {
		log.Fatal(err)
	}
	model := machine.Alpha21164()

	// Profile both data sets: q7 (long-running queens search) and ne
	// (tiny Newton's-method run).
	profiles := map[string]*interp.Profile{}
	for i := range b.DataSets {
		ds := &b.DataSets[i]
		p := interp.NewProfile(mod)
		res, err := interp.Run(mod, ds.Make(), interp.Options{Profile: p})
		if err != nil {
			log.Fatal(err)
		}
		profiles[ds.Name] = p
		fmt.Printf("profiled xli.%s: %8d dynamic branches\n", ds.Name, res.DynBranches())
	}
	fmt.Println()

	aligners := []align.Aligner{align.PettisHansen{}, align.NewTSP(1)}
	for _, testName := range []string{"q7", "ne"} {
		testProf := profiles[testName]
		origCP := layout.ModulePenalty(mod, align.Original{}.Align(context.Background(), mod, testProf, model), testProf, model)
		fmt.Printf("evaluating on xli.%s (original control penalty: %d cycles)\n", testName, origCP)
		for _, a := range aligners {
			for _, trainName := range []string{"q7", "ne"} {
				l := a.Align(context.Background(), mod, profiles[trainName], model)
				cp := layout.ModulePenalty(mod, l, testProf, model)
				kind := "self "
				if trainName != testName {
					kind = "cross"
				}
				fmt.Printf("  %-7s trained on %-2s (%s): penalty %8d (%.3f of original, removes %4.1f%%)\n",
					a.Name(), trainName, kind, cp,
					float64(cp)/float64(origCP), 100*(1-float64(cp)/float64(origCP)))
			}
		}
		fmt.Println()
	}
	fmt.Println("Note the asymmetry the paper reports: training on the tiny ne run")
	fmt.Println("generalizes poorly to q7, while training on q7 transfers well to ne.")
}
