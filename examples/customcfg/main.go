// Customcfg: use the public IR builder to construct a control-flow graph
// by hand, attach an edge-frequency profile, and run the whole alignment
// stack on it — the path a compiler backend would take to adopt this
// library without the Mini-C front end.
//
//	go run ./examples/customcfg
package main

import (
	"context"
	"fmt"
	"log"

	"branchalign/internal/align"
	"branchalign/internal/interp"
	"branchalign/internal/ir"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
)

func main() {
	// Build a function shaped like a state machine with a hot cycle
	// entry -> A -> B -> A (hot back edge) and a cold error path, plus a
	// 3-way dispatch. The compiler order deliberately interleaves hot and
	// cold blocks.
	b := ir.NewFuncBuilder("statemachine", []ir.ParamKind{ir.ParamScalar})
	x := ir.Reg(0)
	cold1 := b.NewBlock("cold.error")   // b1
	hotA := b.NewBlock("hot.a")         // b2
	cold2 := b.NewBlock("cold.cleanup") // b3
	hotB := b.NewBlock("hot.b")         // b4
	dispatch := b.NewBlock("dispatch")  // b5
	caseX := b.NewBlock("case.x")       // b6
	caseY := b.NewBlock("case.y")       // b7
	exit := b.NewBlock("exit")          // b8

	b.CondBr(ir.RegVal(x), hotA, cold1) // entry: almost always to hot.a
	b.SetInsert(cold1)
	b.EmitOut(ir.ConstVal(-1))
	b.Br(exit)
	b.SetInsert(hotA)
	b.EmitBin(x, ir.OpSub, ir.RegVal(x), ir.ConstVal(1))
	b.Br(hotB)
	b.SetInsert(cold2)
	b.EmitOut(ir.ConstVal(-2))
	b.Br(exit)
	b.SetInsert(hotB)
	b.CondBr(ir.RegVal(x), hotA, dispatch) // hot back edge
	b.SetInsert(dispatch)
	b.Switch(ir.RegVal(x), []int64{1, 2}, []int{caseX, caseY}, cold2)
	b.SetInsert(caseX)
	b.Br(exit)
	b.SetInsert(caseY)
	b.Br(exit)
	b.SetInsert(exit)
	b.Ret(ir.RegVal(x))

	mod := &ir.Module{Funcs: []*ir.Func{b.Func()}}
	if err := mod.Verify(); err != nil {
		log.Fatal(err)
	}

	// Attach a profile by hand (a backend would translate its own edge
	// counters). Units are execution counts.
	prof := interp.NewProfile(mod)
	fp := prof.Funcs[0]
	set := func(block, succ int, count int64) { fp.EdgeCounts[block][succ] = count }
	set(0, 0, 1000) // entry -> hot.a
	set(0, 1, 1)    // entry -> cold.error
	set(2, 0, 500000)
	set(4, 0, 499000) // hot.b -> hot.a back edge
	set(4, 1, 1000)   // hot.b -> dispatch
	set(5, 0, 600)    // dispatch -> case.x
	set(5, 1, 350)    // dispatch -> case.y
	set(5, 2, 50)     // dispatch -> cold.cleanup
	set(1, 0, 1)
	set(3, 0, 50)
	set(6, 0, 600)
	set(7, 0, 350)

	model := machine.Alpha21164()
	fmt.Println("hand-built CFG (dot):")
	fmt.Print(mod.Funcs[0].Dot(func(blk, si int) (int64, bool) {
		return fp.EdgeCounts[blk][si], true
	}))
	fmt.Println()

	for _, a := range []align.Aligner{align.Original{}, align.PettisHansen{}, align.NewTSP(1)} {
		l := a.Align(context.Background(), mod, prof, model)
		cp := layout.ModulePenalty(mod, l, prof, model)
		fmt.Printf("%-9s penalty %8d cycles, order %v\n", a.Name(), cp, l.Funcs[0].Order)
	}
	fmt.Println()
	fmt.Println("The TSP order keeps hot.a/hot.b adjacent (the half-million-count")
	fmt.Println("cycle) and sinks both cold blocks, trading the rare paths' jumps")
	fmt.Println("for fall-throughs on the hot ones.")
}
