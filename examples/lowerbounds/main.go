// Lowerbounds: build branch-alignment DTSP instances and compare the
// three ways this repository reasons about optimality: the
// assignment-problem bound, the Held-Karp bound, the exact DP optimum
// (small instances), and the iterated-3-Opt tour. Reproduces, in
// miniature, the paper's appendix analysis of why Held-Karp is the right
// bound for these instances.
//
//	go run ./examples/lowerbounds
package main

import (
	"fmt"
	"log"

	"branchalign/internal/align"
	"branchalign/internal/bench"
	"branchalign/internal/interp"
	"branchalign/internal/machine"
	"branchalign/internal/tsp"
)

func main() {
	model := machine.Alpha21164()

	// Instances from a real benchmark.
	b, err := bench.ByName("espresso")
	if err != nil {
		log.Fatal(err)
	}
	mod, err := b.Compile()
	if err != nil {
		log.Fatal(err)
	}
	prof := interp.NewProfile(mod)
	if _, err := interp.Run(mod, b.DataSets[1].Make(), interp.Options{Profile: prof}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-procedure DTSP instances of espresso.tl:")
	fmt.Printf("%-14s %7s %10s %10s %10s %10s\n", "func", "cities", "AP", "HK", "3-opt", "exact")
	for fi, f := range mod.Funcs {
		n := len(f.Blocks)
		if n < 3 {
			continue
		}
		mat := align.BuildMatrixForFunc(f, prof.Funcs[fi], model)
		ap := tsp.AssignmentBound(mat)
		res := tsp.Solve(mat, tsp.PaperSolveOptions(1))
		hk := tsp.HeldKarpDirected(mat, tsp.HeldKarpOptions{UpperBound: res.Cost, Iterations: 2000})
		exact := "-"
		if n <= 12 {
			_, opt := tsp.SolveExact(mat)
			exact = fmt.Sprintf("%d", opt)
		}
		fmt.Printf("%-14s %7d %10d %10.0f %10d %10s\n", f.Name, n, ap, hk, res.Cost, exact)
	}

	fmt.Println()
	fmt.Println("The AP bound collapses on instances whose cheapest cycle cover is")
	fmt.Println("not a single tour (loop-heavy procedures), while Held-Karp stays")
	fmt.Println("within a fraction of a percent — the paper's appendix argument for")
	fmt.Println("choosing iterated 3-Opt + HK over AP-patching DTSP codes.")

	// A synthetic pathological case: two hot disjoint loops. The AP bound
	// is the pair of 2-cycles; no tour can match it.
	fmt.Println()
	m := tsp.NewMatrix(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				m.Set(i, j, 1000)
			}
		}
	}
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(2, 3, 1)
	m.Set(3, 2, 1)
	_, opt := tsp.SolveExact(m)
	fmt.Printf("two-disjoint-loops instance: AP bound %d, true optimum %d (gap %.0fx)\n",
		tsp.AssignmentBound(m), opt, float64(opt)/float64(tsp.AssignmentBound(m)))
}
