// Toolchain: the separate-phase workflow a production integration would
// use — profile once, persist the profile, align later from the saved
// profile, inspect the laid-out pseudo-assembly, and persist the layout
// for the backend. Mirrors the paper's file-based pipeline between SUIF,
// HALT and the AT&T TSP solver.
//
//	go run ./examples/toolchain
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"branchalign/internal/align"
	"branchalign/internal/interp"
	"branchalign/internal/layout"
	"branchalign/internal/lower"
	"branchalign/internal/machine"
	"branchalign/internal/minic"
	"branchalign/internal/opt"
)

const src = `
func collatzLen(x) {
	var steps = 0;
	while (x != 1) {
		if (x % 2 == 0) { x = x / 2; } else { x = 3 * x + 1; }
		steps = steps + 1;
	}
	return steps;
}

func main(n) {
	var i;
	var best = 0;
	for (i = 1; i <= n; i = i + 1) {
		var len = collatzLen(i);
		if (len > best) { best = len; out(i); }
	}
	return best;
}
`

func main() {
	// Phase 1: compile and clean up the CFG (what SUIF would hand the
	// backend).
	prog, err := minic.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	info, err := minic.Check(prog)
	if err != nil {
		log.Fatal(err)
	}
	mod, err := lower.Program(info)
	if err != nil {
		log.Fatal(err)
	}
	st := opt.Module(mod)
	fmt.Printf("compiled + cleaned: %d edges threaded, %d blocks merged\n",
		st.ThreadedEdges, st.MergedBlocks)

	// Phase 2: instrumented run; persist the profile (HALT's output).
	prof := interp.NewProfile(mod)
	if _, err := interp.Run(mod, []interp.Input{interp.ScalarInput(3000)}, interp.Options{Profile: prof}); err != nil {
		log.Fatal(err)
	}
	var profileFile bytes.Buffer
	if err := prof.WriteJSON(&profileFile); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profile serialized: %d bytes\n", profileFile.Len())

	// Phase 3: a later process loads the profile and aligns (the TSP
	// solver step).
	loaded, err := interp.ReadProfileJSON(&profileFile, mod)
	if err != nil {
		log.Fatal(err)
	}
	model := machine.Alpha21164()
	aligner := align.NewTSP(1)
	lay := aligner.Align(context.Background(), mod, loaded, model)

	before := layout.ModulePenalty(mod, align.Original{}.Align(context.Background(), mod, loaded, model), loaded, model)
	after := layout.ModulePenalty(mod, lay, loaded, model)
	met := layout.ModuleMetrics(mod, lay, loaded)
	fmt.Printf("penalty %d -> %d cycles; %.1f%% of transfers now fall through\n",
		before, after, 100*met.FallthroughRate())

	// Phase 4: emit the laid-out pseudo-assembly for the hot function
	// (what the backend would encode) and persist the layout.
	fi := mod.FuncIndex("collatzLen")
	pf := layout.PlaceFunc(mod.Funcs[fi], lay.Funcs[fi], 0)
	fmt.Println("\nlaid-out collatzLen:")
	fmt.Print(layout.Listing(mod.Funcs[fi], lay.Funcs[fi], pf))

	var layoutFile bytes.Buffer
	if err := lay.WriteJSON(&layoutFile); err != nil {
		log.Fatal(err)
	}
	if _, err := layout.ReadLayoutJSON(&layoutFile, mod); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlayout serialized and re-validated: %d bytes\n", layoutFile.Len())
}
