// Machines: the "other machine models" study the paper lists as future
// work. Runs the same benchmark under three penalty models (shallow
// pipeline, the paper's Alpha 21164, and a deep pipeline) and shows how
// the value of near-optimal alignment scales with mispredict cost.
//
//	go run ./examples/machines
package main

import (
	"context"
	"fmt"
	"log"

	"branchalign/internal/align"
	"branchalign/internal/bench"
	"branchalign/internal/interp"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
)

func main() {
	b, err := bench.ByName("compress")
	if err != nil {
		log.Fatal(err)
	}
	mod, err := b.Compile()
	if err != nil {
		log.Fatal(err)
	}
	prof := interp.NewProfile(mod)
	if _, err := interp.Run(mod, b.DataSets[0].Make(), interp.Options{Profile: prof}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("compress.txt under three machine models:")
	fmt.Printf("%-12s %14s %14s %14s %10s %10s\n",
		"model", "original CP", "greedy CP", "tsp CP", "greedy rm%", "tsp rm%")
	for _, model := range machine.Models() {
		orig := layout.ModulePenalty(mod, align.Original{}.Align(context.Background(), mod, prof, model), prof, model)
		greedy := layout.ModulePenalty(mod, align.PettisHansen{}.Align(context.Background(), mod, prof, model), prof, model)
		tspCP := layout.ModulePenalty(mod, align.NewTSP(1).Align(context.Background(), mod, prof, model), prof, model)
		fmt.Printf("%-12s %14d %14d %14d %9.1f%% %9.1f%%\n",
			model.Name, orig, greedy, tspCP,
			100*(1-float64(greedy)/float64(orig)),
			100*(1-float64(tspCP)/float64(orig)))
	}
	fmt.Println()
	fmt.Println("Deeper pipelines raise the stakes: the same layouts save more")
	fmt.Println("absolute cycles, and the gap between greedy and near-optimal")
	fmt.Println("alignment widens — the reduction itself is model-agnostic, only")
	fmt.Println("the edge costs change (Section 2.2's only assumption).")
}
