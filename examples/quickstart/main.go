// Quickstart: compile a small Mini-C program, profile it, align its
// basic blocks with the paper's TSP-based algorithm, and compare control
// penalties and simulated execution time against the original layout.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"branchalign/internal/align"
	"branchalign/internal/interp"
	"branchalign/internal/layout"
	"branchalign/internal/lower"
	"branchalign/internal/machine"
	"branchalign/internal/minic"
	"branchalign/internal/pipe"
)

// A branchy little program: a prime sieve with an unusual block order
// (the hot inner loop's rare side is textually first, so the compiler
// order is poor — exactly what alignment fixes).
const src = `
global sieve[10000];

func countPrimes(limit) {
	var i;
	var count = 0;
	for (i = 2; i < limit; i = i + 1) { sieve[i] = 1; }
	for (i = 2; i < limit; i = i + 1) {
		if (sieve[i] == 0) {
			// Rare path: composite already crossed out.
			sieve[0] = sieve[0] + 1;
		} else {
			count = count + 1;
			var j;
			for (j = i + i; j < limit; j = j + i) { sieve[j] = 0; }
		}
	}
	return count;
}

func main(n) {
	var primes = countPrimes(n);
	out(primes);
	return primes;
}
`

func main() {
	// 1. Compile: Mini-C -> checked AST -> basic-block IR.
	prog, err := minic.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	info, err := minic.Check(prog)
	if err != nil {
		log.Fatal(err)
	}
	mod, err := lower.Program(info)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Profile: run the program on a training input, collecting CFG
	// edge frequencies (the paper's HALT instrumentation step).
	inputs := []interp.Input{interp.ScalarInput(8000)}
	prof := interp.NewProfile(mod)
	res, err := interp.Run(mod, inputs, interp.Options{Profile: prof})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("primes below 8000: %d (%d dynamic branches profiled)\n\n", res.Ret, res.DynBranches())

	// 3. Align: original vs greedy (Pettis-Hansen) vs TSP-based.
	model := machine.Alpha21164()
	for _, a := range []align.Aligner{align.Original{}, align.PettisHansen{}, align.NewTSP(1)} {
		l := a.Align(context.Background(), mod, prof, model)
		cp := layout.ModulePenalty(mod, l, prof, model)

		// 4. Simulate execution under the layout (pipeline + I-cache).
		st, _, err := pipe.Run(mod, l, inputs, pipe.DefaultConfig(), interp.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s control penalty %8d cycles | simulated time %9d cycles (CPI %.3f, icache misses %d)\n",
			a.Name(), cp, st.Cycles, st.CPI(), st.CacheMisses)
	}

	// 5. Show the reordering the TSP aligner chose for the hot function.
	l := align.NewTSP(1).Align(context.Background(), mod, prof, model)
	fi := mod.FuncIndex("countPrimes")
	fmt.Printf("\ncountPrimes block order: %v\n", l.Funcs[fi].Order)
	fmt.Println("(block 0 is the entry; compare with the original 0,1,2,... order)")
}
