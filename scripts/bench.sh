#!/bin/sh
# Benchmark snapshot tool: run the top-level benchmark suite and record
# the numbers as results/BENCH_<label>.json (one object per benchmark,
# plus the commit and date the snapshot was taken at). Usage:
#
#   scripts/bench.sh <label> [bench-regex]
#
# e.g. the dense-vs-sparse kernel comparison recorded in results/:
#
#   scripts/bench.sh baseline '//dense'
#   scripts/bench.sh sparse   '//sparse'
#
# Labels with a recorded comparison get a default regex, so the
# before/after pair is always measured on the same benchmark set:
#
#   scripts/bench.sh threeopt        # BenchmarkLargeSolve (vs threeopt_pre)
#
# BENCHTIME overrides -benchtime (default 20x: the sparse/dense kernel
# benchmarks are deterministic per iteration, so a fixed iteration count
# keeps large and small instances comparable).
set -eu

cd "$(dirname "$0")/.."

label=${1?"usage: scripts/bench.sh <label> [bench-regex]"}
case "$label" in
threeopt*) default_regex='BenchmarkLargeSolve' ;;
parallel*) default_regex='BenchmarkSolveParallel|BenchmarkBoundParallel' ;;
exttsp*) default_regex='BenchmarkExtTSP' ;;
heldkarp*) default_regex='BenchmarkHeldKarpBound' ;;
*) default_regex='.' ;;
esac
regex=${2:-$default_regex}
benchtime=${BENCHTIME:-20x}

mkdir -p results
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$regex" -benchmem -benchtime "$benchtime" -timeout 60m . | tee "$raw"

{
	printf '{\n'
	printf '  "label": "%s",\n' "$label"
	commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
	# Flag snapshots of uncommitted trees: their numbers are not
	# reproducible from the recorded commit.
	if [ "$commit" != unknown ] && ! git diff --quiet HEAD -- '*.go' 2>/dev/null; then
		commit="${commit}-dirty"
	fi
	printf '  "commit": "%s",\n' "$commit"
	printf '  "go_version": "%s",\n' "$(go env GOVERSION)"
	# The host's CPU count makes parallel-series snapshots
	# self-describing: workers>host_cpus rows can only prove parity,
	# never speedup.
	printf '  "host_cpus": %s,\n' "$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
	printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "benchtime": "%s",\n' "$benchtime"
	printf '  "benchmarks": [\n'
	awk '
		/^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)
			iters = $2
			ns = $3
			bytes = ""; allocs = ""
			for (i = 4; i < NF; i++) {
				if ($(i + 1) == "B/op") bytes = $i
				if ($(i + 1) == "allocs/op") allocs = $i
			}
			line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns)
			if (bytes != "") line = line sprintf(", \"bytes_per_op\": %s", bytes)
			if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
			line = line "}"
			if (n++) printf(",\n")
			printf("%s", line)
		}
		END { if (n) printf("\n") }
	' "$raw"
	printf '  ]\n'
	printf '}\n'
} >"results/BENCH_${label}.json"

echo "wrote results/BENCH_${label}.json"
