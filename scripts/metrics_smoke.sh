#!/bin/sh
# Metrics-plane smoke gate: boot balignd, serve one align request, and
# verify the /metrics exposition is scrapeable and live — the core
# families are present (HTTP requests, solve latency, engine cache,
# worker pool), the align request counter is non-zero, and readiness
# flips to 503 when the SIGTERM drain begins. Usage:
#
#   scripts/metrics_smoke.sh [port]
set -eu

cd "$(dirname "$0")/.."

port=${1:-8358}
addr="localhost:$port"

bin=$(mktemp -d)/balignd
trap 'rm -rf "$(dirname "$bin")"' EXIT

echo "== building balignd"
go build -o "$bin" ./cmd/balignd

echo "== starting balignd on $addr"
"$bin" -addr "$addr" &
pid=$!
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$(dirname "$bin")"' EXIT

i=0
until curl -sf "http://$addr/v1/readyz" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -gt 50 ]; then
		echo "balignd did not become ready" >&2
		exit 1
	fi
	sleep 0.1
done
echo "== readyz ok"

echo "== aligning one benchmark to light up the counters"
rid=$(curl -sf -o /dev/null -D - "http://$addr/v1/align" \
	-H 'Content-Type: application/json' \
	-d '{"bench":"compress"}' | tr -d '\r' | sed -n 's/^[Xx]-[Rr]equest-[Ii]d: //p')
if [ -z "$rid" ]; then
	echo "align response carried no X-Request-Id" >&2
	exit 1
fi
echo "== request id: $rid"

echo "== scraping /metrics"
scrape=$(curl -sf "http://$addr/metrics")

# Core families, one per subsystem the plane instruments.
for fam in \
	balignd_http_requests_total \
	balignd_http_request_duration_seconds \
	engine_requests_total \
	engine_cache_misses_total \
	engine_solve_duration_seconds \
	work_pool_capacity \
	work_pool_queue_wait_seconds; do
	echo "$scrape" | grep -q "^# TYPE $fam " || {
		echo "family $fam missing from /metrics" >&2
		exit 1
	}
done

# The align request must have been counted with a 200 on the exact
# endpoint label, and the solve must show up in the latency histogram.
echo "$scrape" | grep 'balignd_http_requests_total{endpoint="/v1/align"' |
	grep 'code="200"' | grep -qv ' 0$' || {
	echo "align request counter is zero or missing" >&2
	exit 1
}
echo "$scrape" | grep -q 'engine_solve_duration_seconds_count.* [1-9]' || {
	echo "solve latency histogram is empty" >&2
	exit 1
}

echo "== draining (SIGTERM) and checking readiness flips"
kill -TERM "$pid"
i=0
until [ "$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/v1/readyz" 2>/dev/null || echo 000)" != 200 ]; do
	i=$((i + 1))
	if [ "$i" -gt 50 ]; then
		echo "readyz stayed 200 through drain" >&2
		exit 1
	fi
	sleep 0.1
done
wait "$pid"
echo "metrics-smoke: ok"
