#!/bin/sh
# End-to-end demo of the balignd HTTP server: build it, start it on a
# free port, align one bundled benchmark over HTTP (checking the
# response), show the server stats, and shut the server down with
# SIGTERM to exercise the graceful drain. Usage:
#
#   scripts/serve_demo.sh [benchmark] [port]
set -eu

cd "$(dirname "$0")/.."

bench=${1:-compress}
port=${2:-8347}
addr="localhost:$port"

bin=$(mktemp -d)/balignd
trap 'rm -rf "$(dirname "$bin")"' EXIT

echo "== building balignd"
go build -o "$bin" ./cmd/balignd

echo "== starting balignd on $addr"
"$bin" -addr "$addr" &
pid=$!
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$(dirname "$bin")"' EXIT

# Wait for the health endpoint to come up.
i=0
until curl -sf "http://$addr/v1/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -gt 50 ]; then
		echo "balignd did not become healthy" >&2
		exit 1
	fi
	sleep 0.1
done
echo "== healthz ok"

echo "== aligning benchmark '$bench' over HTTP"
resp=$(curl -sf "http://$addr/v1/align" \
	-H 'Content-Type: application/json' \
	-d "{\"bench\":\"$bench\",\"bound\":true,\"hk_iterations\":1000}")
echo "$resp"

# The response must carry a positive penalty, a bound, and per-function
# stats; grep keeps the check dependency-free.
echo "$resp" | grep -q '"penalty":' || { echo "no penalty in response" >&2; exit 1; }
echo "$resp" | grep -q '"bound":' || { echo "no bound in response" >&2; exit 1; }
echo "$resp" | grep -q '"funcs":' || { echo "no per-function stats" >&2; exit 1; }
echo "$resp" | grep -q '"truncated": false' || { echo "demo request was truncated" >&2; exit 1; }

echo "== server stats"
curl -sf "http://$addr/v1/stats"

echo "== draining (SIGTERM)"
kill -TERM "$pid"
wait "$pid"
echo "serve-demo: ok"
