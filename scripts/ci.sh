#!/bin/sh
# Tier-1 gate, shell form of `make ci`: formatting, go vet, full build,
# race-detector test suite, and the invariant checker over every bundled
# benchmark. Run from anywhere; exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
out=$(gofmt -l .)
if [ -n "$out" ]; then
	echo "gofmt needed on:"
	echo "$out"
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race (telemetry + solver, concurrency-heavy)"
go test -race -count=2 ./internal/obs/ ./internal/tsp/

echo "== go test -race (engine + balignd + suite, request-serving stack)"
# -timeout 20m: the core suite alone runs ~4.5 minutes per pass under
# the race detector, so two passes brush the 10-minute default.
go test -race -count=2 -timeout 20m ./internal/engine/ ./cmd/balignd/ ./internal/core/

echo "== go test -race GOMAXPROCS=2 (schedule-independence of parallel solves)"
# Determinism must survive real preemption: with two OS threads the race
# detector interleaves the per-run goroutines for real, and the bit-identity
# tests fail loudly if any result depends on scheduling order.
GOMAXPROCS=2 go test -race -count=2 -run 'Parallel|Determin' ./internal/tsp/ ./internal/align/

echo "== go test -race"
go test -race -timeout 20m ./...

echo "== bench-smoke (every benchmark compiles and runs once)"
# -benchtime=1x: not a measurement, a liveness gate. A benchmark that
# panics, hangs, or rots out of the build fails CI here instead of at
# the next snapshot.
go test -run '^$' -bench . -benchtime 1x -timeout 20m .

echo "== heldkarp-alloc gate (kernel must stay allocation-free per ascent)"
# The pooled 1-tree kernel runs the synth5000 ascent in ~10 allocs/op;
# the boxed-heap implementation it replaced took ~227k. A named pass
# with a hard allocs/op ceiling keeps that from silently regressing —
# the catch-all smoke above would still "pass" a deoptimized kernel.
out=$(go test -run '^$' -bench 'BenchmarkHeldKarpBound/synth5000' -benchtime 1x -benchmem -timeout 10m .)
echo "$out"
allocs=$(echo "$out" | awk '/BenchmarkHeldKarpBound\/synth5000/ {print $(NF-1)}')
if [ -z "$allocs" ] || [ "$allocs" -gt 1000 ]; then
	echo "ci: Held-Karp kernel allocation regression (${allocs:-no result} allocs/op, ceiling 1000)"
	exit 1
fi

echo "== metrics-smoke (boot balignd, align once, scrape /metrics)"
# Black-box gate on the metrics plane: the exposition must be
# scrapeable from a real process with the core families present and
# the request counters actually moving. Catches wiring regressions
# (registry not shared, middleware unplugged) that in-process tests
# with injected registries cannot.
scripts/metrics_smoke.sh

echo "== vet-static (balign vet -all + balignlint)"
# Static gates over the repo's own artifacts: the CFG/profile invariant
# checker across every bundled benchmark (now including the staticprof
# lints and a flow check of the estimated profile), then the determinism
# linter over the Go sources themselves.
go run ./cmd/balign vet -all
go run ./cmd/balignlint

echo "ci: all gates green"
