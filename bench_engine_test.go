package branchalign

import (
	"context"
	"testing"

	"branchalign/internal/engine"
	"branchalign/internal/machine"
	"branchalign/internal/testutil"
)

// BenchmarkEngineDispatch measures the alignment engine's request
// overhead around the solver:
//
//   - cold: every request is a full solve (cache disabled) — the price
//     of one uncached engine round trip, dominated by the TSP solves;
//   - cached: every request after the first is served from the keyed
//     result cache — the pure dispatch overhead (request hashing, LRU
//     lookup, result copy), which is what a balignd hot path pays.
//
// Snapshot with: scripts/bench.sh engine 'BenchmarkEngineDispatch'
func BenchmarkEngineDispatch(b *testing.B) {
	mod, prof, _, err := testutil.CompileAndProfile(testutil.BranchySource, testutil.BranchyInput(400, 7))
	if err != nil {
		b.Fatal(err)
	}
	model := machine.Alpha21164()
	req := engine.Request{Module: mod, Profile: prof, Model: model, Seed: 1}

	b.Run("cold", func(b *testing.B) {
		e := engine.New(engine.Options{CacheEntries: -1})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := e.Align(context.Background(), req)
			if err != nil {
				b.Fatal(err)
			}
			if res.CacheHit {
				b.Fatal("cache hit with caching disabled")
			}
		}
	})

	b.Run("cached", func(b *testing.B) {
		e := engine.New(engine.Options{})
		if _, err := e.Align(context.Background(), req); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := e.Align(context.Background(), req)
			if err != nil {
				b.Fatal(err)
			}
			if !res.CacheHit {
				b.Fatal("expected cache hit")
			}
		}
	})
}
