package branchalign

import (
	"context"
	"testing"

	"branchalign/internal/align"
	"branchalign/internal/bench"
	"branchalign/internal/layout"
	"branchalign/internal/machine"
)

// ExtTSP family benchmarks: the chain-merging aligner vs the DTSP
// solver (BenchmarkTSPAlign in bench_test.go measures the same module),
// the objective evaluator, and the merger's scaling on growing
// synthetic procedures. Snapshot with:
//
//	scripts/bench.sh exttsp

// BenchmarkExtTSPAlign measures whole-module chain-merging alignment of
// the compress benchmark (compare BenchmarkGreedyAlign/BenchmarkTSPAlign).
func BenchmarkExtTSPAlign(b *testing.B) { benchAlign(b, align.NewExtTSP()) }

// BenchmarkExtTSPScore measures the objective evaluator on a 200-block
// synthetic module (compare BenchmarkLayoutPenalty, the control-penalty
// evaluator on the same instance).
func BenchmarkExtTSPScore(b *testing.B) {
	mod, prof, err := bench.Synthesize(bench.DefaultSynth(200, 3))
	if err != nil {
		b.Fatal(err)
	}
	m := machine.Alpha21164()
	l := layout.Identity(mod, prof, m)
	p := layout.DefaultExtTSPParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layout.ModuleExtTSPScore(mod, l, prof, p)
	}
}

// BenchmarkExtTSPScalability sweeps the chain merger over growing
// synthetic procedures (the DTSP counterpart is BenchmarkScalability).
func BenchmarkExtTSPScalability(b *testing.B) {
	for _, blocks := range []int{20, 50, 100, 200} {
		mod, prof, err := bench.Synthesize(bench.DefaultSynth(blocks, int64(blocks)))
		if err != nil {
			b.Fatal(err)
		}
		m := machine.Alpha21164()
		a := align.NewExtTSP()
		b.Run(sizeName(blocks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a.Align(context.Background(), mod, prof, m)
			}
		})
	}
}
